//! # gemm-batch — batched execution runtime for Ozaki Scheme II
//!
//! Real matrix-engine workloads are dominated by *many* GEMMs, often
//! small and often sharing an operand (weight-stationary inference, the
//! shared component products of CRT complex multiplication, blocked
//! factorizations). Driving [`ozaki2::Ozaki2`] one call at a time leaves
//! three kinds of performance on the table, and this crate's
//! [`BatchedOzaki2`] collects all three:
//!
//! * **Prepared-operand reuse** — Algorithm 1's front end (scale, trunc,
//!   convert, pack; lines 1–5) depends on one operand only, so a shared
//!   matrix is prepared **once** and its packed residue panels reused by
//!   every item, and across calls via a small LRU keyed on operand
//!   identity ([`OperandCache`]).
//! * **Workspace pooling** — per-item scratch comes from a
//!   [`WorkspacePool`] of grow-once workspaces, so steady-state batched
//!   iterations allocate nothing beyond the output buffers.
//! * **Scheduling** — small items run one-per-worker with engine stripes
//!   disabled, large items run striped one after another; the crossover
//!   comes from the plan-level arithmetic intensity ([`Schedule`]).
//!
//! Every batched result is **bit-identical** to the equivalent sequence
//! of [`ozaki2::Ozaki2::dgemm`] / `sgemm` calls — caching, pooling and
//! either schedule change *when* work happens, never *what* is computed.
//! (In [`Mode::Accurate`] the scales couple `A` and `B`, so operands
//! cannot be prepared one-sided; accurate batches keep the pool and
//! scheduler but skip the cache.)
//!
//! ```
//! use gemm_batch::{BatchedOzaki2, StridedBatchF64};
//! use gemm_dense::workload::phi_matrix_f64;
//! use ozaki2::{Mode, Ozaki2};
//!
//! // A weight-stationary micro-batch: one shared B, four streaming As.
//! let b = phi_matrix_f64(32, 24, 0.5, 7, 1);
//! let a_stream: Vec<f64> = (0..4u64)
//!     .flat_map(|s| phi_matrix_f64(16, 32, 0.5, s, 0).into_vec())
//!     .collect();
//! let runtime = BatchedOzaki2::new(15, Mode::Fast);
//! let cs = runtime.dgemm_batched(
//!     &StridedBatchF64::packed(&a_stream, 16, 32, 4),
//!     &StridedBatchF64::broadcast(&b, 4), // stride 0: prepared once
//! );
//! // Bit-identical to the per-item emulator.
//! let emu = Ozaki2::new(15, Mode::Fast);
//! for (s, c) in cs.iter().enumerate() {
//!     let a = phi_matrix_f64(16, 32, 0.5, s as u64, 0);
//!     assert_eq!(c, &emu.dgemm(&a, &b));
//! }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod pool;
pub mod schedule;
pub mod strided;

pub use cache::{
    fingerprint_f32, fingerprint_f64, fingerprint_view_f32, fingerprint_view_f64, OperandCache,
    OperandKey,
};
pub use pool::{PooledWorkspace, WorkspacePool};
pub use schedule::{Schedule, INTENSITY_CROSSOVER};
pub use strided::{StridedBatch, StridedBatchF32, StridedBatchF64};

use gemm_dense::{MatF32, MatF64, MatView, Matrix};
use ozaki2::{EmulationError, GemmArgs, Mode, OperandInput, OperandSide, Ozaki2, PreparedOperand};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Default capacity of the cross-call prepared-operand LRU.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

/// One side of a batch item: a raw borrowed view converted in the
/// worker's pooled workspace (zero-copy, even for `ld`-strided items), or
/// a shared preparation.
enum Side<'s> {
    Raw(MatView<'s, f64>),
    Prep(Arc<PreparedOperand>),
}

/// One schedulable unit of work.
struct Job<'s> {
    m: usize,
    k: usize,
    n: usize,
    a: Side<'s>,
    b: Side<'s>,
    parallel: bool,
    out: &'s mut MatF64,
    err: &'s mut Option<EmulationError>,
}

/// One schedulable SGEMM unit (f32 in/out, widened in the worker).
struct SgemmJob<'s> {
    m: usize,
    k: usize,
    n: usize,
    a: Option<Arc<PreparedOperand>>,
    a_raw: MatView<'s, f32>,
    b: Option<Arc<PreparedOperand>>,
    b_raw: MatView<'s, f32>,
    parallel: bool,
    out: &'s mut MatF32,
    err: &'s mut Option<EmulationError>,
}

/// The batched Ozaki Scheme II runtime: prepared-operand cache +
/// workspace pool + many-GEMM scheduler. See the crate docs for the
/// design and the bit-identicality contract.
///
/// The runtime is `Sync`: one instance can serve concurrent callers (the
/// cache and pool are internally locked).
///
/// # Examples
/// ```
/// use gemm_batch::BatchedOzaki2;
/// use gemm_dense::workload::phi_matrix_f64;
/// use ozaki2::{Mode, Ozaki2};
///
/// let runtime = BatchedOzaki2::new(12, Mode::Fast);
/// // Ragged shape group: items need not share shapes — sharing an
/// // operand (here `w`) is still detected and prepared once.
/// let w = phi_matrix_f64(20, 16, 0.5, 1, 1);
/// let a0 = phi_matrix_f64(8, 20, 0.5, 2, 0);
/// let a1 = phi_matrix_f64(30, 20, 0.5, 3, 0);
/// let cs = runtime.dgemm_group(&[(&a0, &w), (&a1, &w)]);
/// let emu = Ozaki2::new(12, Mode::Fast);
/// assert_eq!(cs[0], emu.dgemm(&a0, &w));
/// assert_eq!(cs[1], emu.dgemm(&a1, &w));
/// ```
pub struct BatchedOzaki2 {
    emu: Ozaki2,
    pool: WorkspacePool,
    cache: OperandCache,
}

impl BatchedOzaki2 {
    /// Runtime with `n_moduli ∈ 2..=20` and the given mode, retaining up
    /// to [`DEFAULT_CACHE_CAPACITY`] prepared operands across calls.
    pub fn new(n_moduli: usize, mode: Mode) -> Self {
        Self::with_cache_capacity(n_moduli, mode, DEFAULT_CACHE_CAPACITY)
    }

    /// Runtime with an explicit prepared-operand cache capacity
    /// (`0` disables cross-call caching; within-call sharing still
    /// prepares once).
    pub fn with_cache_capacity(n_moduli: usize, mode: Mode, capacity: usize) -> Self {
        Self {
            emu: Ozaki2::new(n_moduli, mode),
            pool: WorkspacePool::new(),
            cache: OperandCache::new(capacity),
        }
    }

    /// The underlying per-call emulator (the bit-identicality reference).
    pub fn emulator(&self) -> Ozaki2 {
        self.emu
    }

    /// Set the fault-tolerance policy of the underlying emulator (every
    /// batch item executes under it, including items running concurrently
    /// on pool workers). See `ozaki2::FaultPolicy`.
    pub fn with_fault_policy(mut self, policy: ozaki2::FaultPolicy) -> Self {
        self.emu = self.emu.with_fault_policy(policy);
        self
    }

    /// Switch the underlying emulator's residue backend (see
    /// [`Ozaki2::with_backend`]). The prepared-operand cache keys on the
    /// backend, so preparations made before the switch are simply never
    /// served afterwards — no flush is needed for correctness.
    ///
    /// # Panics
    /// If the configured `n_moduli` exceeds the new backend's pool.
    pub fn with_backend(mut self, backend: ozaki2::BackendKind) -> Self {
        self.emu = self.emu.with_backend(backend);
        self
    }

    /// The workspace pool (inspect for steady-state no-realloc checks).
    pub fn pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// The prepared-operand cache (inspect hits/misses/footprint).
    pub fn cache(&self) -> &OperandCache {
        &self.cache
    }

    /// Drop every cached preparation. Rarely needed for correctness —
    /// the full-content fingerprint already prevents a mutated or
    /// reallocated operand from hitting — but useful to release the
    /// retained panel memory of operands that will not recur.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    // -- uniform-shape strided batches ----------------------------------

    /// Batched emulated DGEMM over uniform-shape strided batches:
    /// `C_i ≈ A_i · B_i` for every item. Broadcast (stride-0) operands
    /// are prepared once and shared.
    ///
    /// # Panics
    /// On shape/count mismatch or non-finite input (see
    /// [`BatchedOzaki2::try_dgemm_batched`]).
    pub fn dgemm_batched(&self, a: &StridedBatchF64<'_>, b: &StridedBatchF64<'_>) -> Vec<MatF64> {
        self.try_dgemm_batched(a, b)
            .unwrap_or_else(|e| panic!("dgemm_batched: {e}"))
    }

    /// Checked form of [`BatchedOzaki2::dgemm_batched`].
    pub fn try_dgemm_batched(
        &self,
        a: &StridedBatchF64<'_>,
        b: &StridedBatchF64<'_>,
    ) -> Result<Vec<MatF64>, EmulationError> {
        let mut outs: Vec<MatF64> = (0..a.count())
            .map(|_| Matrix::zeros(a.rows(), b.cols()))
            .collect();
        self.try_dgemm_batched_into(a, b, &mut outs)?;
        Ok(outs)
    }

    /// [`BatchedOzaki2::try_dgemm_batched`] into caller-owned outputs
    /// (each must already have shape `(a.rows(), b.cols())`; fully
    /// overwritten). With outputs reused across calls, steady-state
    /// iterations perform **zero** heap allocations beyond the grow-once
    /// pool and cache.
    pub fn try_dgemm_batched_into(
        &self,
        a: &StridedBatchF64<'_>,
        b: &StridedBatchF64<'_>,
        outs: &mut [MatF64],
    ) -> Result<(), EmulationError> {
        let (m, k) = (a.rows(), a.cols());
        let (kb, n) = (b.rows(), b.cols());
        if k != kb || a.count() != b.count() || outs.len() != a.count() {
            return Err(EmulationError::ShapeMismatch);
        }
        if outs.iter().any(|c| c.shape() != (m, n)) {
            return Err(EmulationError::ShapeMismatch);
        }
        let count = a.count();
        if count == 0 {
            return Ok(());
        }

        if self.emu.mode() != Mode::Fast {
            // Accurate mode scales A and B jointly: no one-sided
            // preparation exists. Run the monolithic per-item pipeline
            // over pooled workspaces (items striped internally) — still
            // zero-copy: the facade takes the item views directly.
            let mut ws = self.pool.checkout();
            for (i, out) in outs.iter_mut().enumerate() {
                self.emu.gemm_into(
                    GemmArgs::new(a.view(i), b.view(i)).workspace(&mut ws),
                    out.view_mut(),
                )?;
            }
            return Ok(());
        }

        // Fast mode: shared sides go through the prepared-operand cache,
        // per-item sides convert in the worker's pooled workspace.
        let pa_shared = self.shared_f64(a, OperandSide::A)?;
        let pb_shared = self.shared_f64(b, OperandSide::B)?;
        let schedule = Schedule::choose(m, n, k, self.emu.n_moduli(), count);
        let parallel = schedule.intra_parallel();
        let mut errs: Vec<Option<EmulationError>> = (0..count).map(|_| None).collect();
        let jobs: Vec<Job<'_>> = outs
            .iter_mut()
            .zip(errs.iter_mut())
            .enumerate()
            .map(|(i, (out, err))| Job {
                m,
                k,
                n,
                a: match &pa_shared {
                    Some(p) => Side::Prep(p.clone()),
                    None => Side::Raw(a.view(i)),
                },
                b: match &pb_shared {
                    Some(p) => Side::Prep(p.clone()),
                    None => Side::Raw(b.view(i)),
                },
                parallel,
                out,
                err,
            })
            .collect();
        self.run_jobs(jobs, schedule);
        collect_errors(errs)
    }

    /// Batched emulated SGEMM over uniform-shape strided f32 batches.
    /// Broadcast operands (either side) are prepared once and cached;
    /// per-item operands are widened and prepared in the workers (the
    /// f32 path widens, so it is not allocation-free — the zero-alloc
    /// contract is the f64 path's).
    ///
    /// # Panics
    /// On shape/count mismatch, non-finite input, or `N > 18`.
    pub fn sgemm_batched(&self, a: &StridedBatchF32<'_>, b: &StridedBatchF32<'_>) -> Vec<MatF32> {
        self.try_sgemm_batched(a, b)
            .unwrap_or_else(|e| panic!("sgemm_batched: {e}"))
    }

    /// Checked form of [`BatchedOzaki2::sgemm_batched`].
    pub fn try_sgemm_batched(
        &self,
        a: &StridedBatchF32<'_>,
        b: &StridedBatchF32<'_>,
    ) -> Result<Vec<MatF32>, EmulationError> {
        let (m, k) = (a.rows(), a.cols());
        let (kb, n) = (b.rows(), b.cols());
        if k != kb || a.count() != b.count() {
            return Err(EmulationError::ShapeMismatch);
        }
        let count = a.count();
        let mut outs: Vec<MatF32> = (0..count).map(|_| Matrix::zeros(m, n)).collect();
        if count == 0 {
            return Ok(outs);
        }

        if self.emu.mode() != Mode::Fast {
            let mut ws = self.pool.checkout();
            for (i, out) in outs.iter_mut().enumerate() {
                self.emu.gemm_into(
                    GemmArgs::new(a.view(i), b.view(i)).workspace(&mut ws),
                    out.view_mut(),
                )?;
            }
            return Ok(outs);
        }

        let pa_shared = self.shared_f32(a, OperandSide::A)?;
        let pb_shared = self.shared_f32(b, OperandSide::B)?;
        let schedule = Schedule::choose(m, n, k, self.emu.n_moduli(), count);
        let parallel = schedule.intra_parallel();
        let mut errs: Vec<Option<EmulationError>> = (0..count).map(|_| None).collect();
        let jobs: Vec<SgemmJob<'_>> = outs
            .iter_mut()
            .zip(errs.iter_mut())
            .enumerate()
            .map(|(i, (out, err))| SgemmJob {
                m,
                k,
                n,
                a: pa_shared.clone(),
                a_raw: a.view(i),
                b: pb_shared.clone(),
                b_raw: b.view(i),
                parallel,
                out,
                err,
            })
            .collect();
        let run = |job: SgemmJob<'_>| self.run_sgemm_job(job);
        {
            let _span = gemm_obs::span("batch_round", "batch");
            match schedule {
                Schedule::InterItem => {
                    gemm_obs::catalog::BATCH_ITEMS_INTER.add(jobs.len() as u64);
                    jobs.into_par_iter().for_each(run)
                }
                Schedule::IntraItem => {
                    gemm_obs::catalog::BATCH_ITEMS_INTRA.add(jobs.len() as u64);
                    jobs.into_iter().for_each(run)
                }
            }
        }
        collect_errors(errs)?;
        Ok(outs)
    }

    // -- ragged shape groups --------------------------------------------

    /// Batched emulated DGEMM over a ragged group: items may have
    /// arbitrary (compatible) shapes. Operands referenced by more than
    /// one item — compared by data identity — are prepared once; large
    /// items run striped, small items run one-per-worker.
    ///
    /// # Panics
    /// On a shape mismatch or non-finite input (see
    /// [`BatchedOzaki2::try_dgemm_group`]).
    pub fn dgemm_group(&self, items: &[(&MatF64, &MatF64)]) -> Vec<MatF64> {
        self.try_dgemm_group(items)
            .unwrap_or_else(|e| panic!("dgemm_group: {e}"))
    }

    /// Checked form of [`BatchedOzaki2::dgemm_group`].
    pub fn try_dgemm_group(
        &self,
        items: &[(&MatF64, &MatF64)],
    ) -> Result<Vec<MatF64>, EmulationError> {
        let mut outs: Vec<MatF64> = items
            .iter()
            .map(|(a, b)| Matrix::zeros(a.rows(), b.cols()))
            .collect();
        self.try_dgemm_group_into(items, &mut outs)?;
        Ok(outs)
    }

    /// [`BatchedOzaki2::try_dgemm_group`] into caller-owned outputs
    /// (each must already have shape `(a.rows(), b.cols())`; fully
    /// overwritten). The allocation-free form for serving loops that
    /// recycle output buffers round after round — together with the
    /// workspace pool and operand cache, steady-state group rounds
    /// allocate nothing.
    pub fn try_dgemm_group_into(
        &self,
        items: &[(&MatF64, &MatF64)],
        outs: &mut [MatF64],
    ) -> Result<(), EmulationError> {
        if outs.len() != items.len() {
            return Err(EmulationError::ShapeMismatch);
        }
        for ((a, b), out) in items.iter().zip(outs.iter()) {
            if a.cols() != b.rows() || out.shape() != (a.rows(), b.cols()) {
                return Err(EmulationError::ShapeMismatch);
            }
        }
        if items.is_empty() {
            return Ok(());
        }

        if self.emu.mode() != Mode::Fast {
            let mut ws = self.pool.checkout();
            for ((a, b), out) in items.iter().zip(outs.iter_mut()) {
                self.emu.try_dgemm_into_ws(a, b, out, &mut ws)?;
            }
            return Ok(());
        }

        // Identity-based sharing: operands referenced by >= 2 items are
        // prepared once (and cached across calls); unique operands stay
        // raw and convert in the worker's pooled workspace — unless a
        // previous call already cached them.
        let mult_a = multiplicities(items.iter().map(|(a, _)| ident(a)));
        let mult_b = multiplicities(items.iter().map(|(_, b)| ident(b)));
        let workers = rayon::current_num_threads();
        let nmod = self.emu.n_moduli();

        let mut errs: Vec<Option<EmulationError>> = (0..items.len()).map(|_| None).collect();
        let mut prepared_a: HashMap<(usize, usize, usize), Arc<PreparedOperand>> = HashMap::new();
        let mut prepared_b: HashMap<(usize, usize, usize), Arc<PreparedOperand>> = HashMap::new();
        let mut small = Vec::new();
        let mut large = Vec::new();
        for (((a, b), out), err) in items.iter().zip(outs.iter_mut()).zip(errs.iter_mut()) {
            let (m, k) = a.shape();
            let n = b.cols();
            let a_side = self.group_side(a, OperandSide::A, mult_a[&ident(a)], &mut prepared_a)?;
            let b_side = self.group_side(b, OperandSide::B, mult_b[&ident(b)], &mut prepared_b)?;
            let schedule = Schedule::choose_with(m, n, k, nmod, items.len(), workers);
            let job = Job {
                m,
                k,
                n,
                a: a_side,
                b: b_side,
                parallel: schedule.intra_parallel(),
                out,
                err,
            };
            match schedule {
                Schedule::InterItem => small.push(job),
                Schedule::IntraItem => large.push(job),
            }
        }
        // Large items first, striped one at a time; then the small tail
        // fans out one item per worker.
        self.run_jobs(large, Schedule::IntraItem);
        self.run_jobs(small, Schedule::InterItem);
        collect_errors(errs)?;
        Ok(())
    }

    // -- internals -------------------------------------------------------

    /// Resolve a strided side to a shared preparation. Broadcast
    /// multi-item batches always prepare (the within-call reuse pays
    /// immediately). A single-item batch consults the cache and, on a
    /// miss, goes through probation ([`OperandCache::repeat_miss`]): only
    /// an operand seen on an earlier call gets prepared and retained —
    /// a one-off operand stays on the cheaper zero-alloc raw path.
    fn shared_f64(
        &self,
        batch: &StridedBatchF64<'_>,
        side: OperandSide,
    ) -> Result<Option<Arc<PreparedOperand>>, EmulationError> {
        let within_call = batch.is_broadcast() && batch.count() > 1;
        if !within_call && batch.count() != 1 {
            return Ok(None);
        }
        let view = batch.view(0);
        let key = OperandKey::f64_view(
            &view,
            side,
            self.emu.n_moduli(),
            self.emu.mode(),
            self.emu.backend(),
        );
        if let Some(hit) = self.cache.get(&key) {
            return Ok(Some(hit));
        }
        if !within_call && !self.cache.repeat_miss(&key) {
            return Ok(None);
        }
        // For side A the batch shape is (m, k); for side B it is (k, n) —
        // both match the prepare entry's logical orientation directly.
        let prepared = Arc::new(match side {
            OperandSide::A => self.emu.try_prepare_a_view(&view)?,
            OperandSide::B => self.emu.try_prepare_b_view(&view)?,
        });
        self.cache.insert(key, prepared.clone());
        Ok(Some(prepared))
    }

    /// As [`BatchedOzaki2::shared_f64`] for SGEMM operands (either side).
    fn shared_f32(
        &self,
        batch: &StridedBatchF32<'_>,
        side: OperandSide,
    ) -> Result<Option<Arc<PreparedOperand>>, EmulationError> {
        let within_call = batch.is_broadcast() && batch.count() > 1;
        if !within_call && batch.count() != 1 {
            return Ok(None);
        }
        let view = batch.view(0);
        let key = OperandKey::f32_view(
            &view,
            side,
            self.emu.n_moduli(),
            self.emu.mode(),
            self.emu.backend(),
        );
        if let Some(hit) = self.cache.get(&key) {
            return Ok(Some(hit));
        }
        if !within_call && !self.cache.repeat_miss(&key) {
            return Ok(None);
        }
        let prepared = Arc::new(match side {
            OperandSide::A => self.emu.try_prepare_a_view(&view)?,
            OperandSide::B => self.emu.try_prepare_b_view(&view)?,
        });
        self.cache.insert(key, prepared.clone());
        Ok(Some(prepared))
    }

    /// Resolve one group-item side: operands shared by ≥ 2 items are
    /// prepared and cached immediately; unique operands stay raw
    /// (converting in the worker's pooled workspace beats allocating
    /// panels) unless a cache hit or a probation repeat sighting shows
    /// they recur across calls.
    fn group_side<'s>(
        &self,
        mat: &'s MatF64,
        side: OperandSide,
        multiplicity: usize,
        local: &mut HashMap<(usize, usize, usize), Arc<PreparedOperand>>,
    ) -> Result<Side<'s>, EmulationError> {
        let id = ident(mat);
        if let Some(p) = local.get(&id) {
            return Ok(Side::Prep(p.clone()));
        }
        let (rows, cols) = mat.shape();
        let key = OperandKey::f64(
            mat.as_slice(),
            rows,
            cols,
            side,
            self.emu.n_moduli(),
            self.emu.mode(),
            self.emu.backend(),
        );
        if let Some(hit) = self.cache.get(&key) {
            local.insert(id, hit.clone());
            return Ok(Side::Prep(hit));
        }
        if multiplicity < 2 && !self.cache.repeat_miss(&key) {
            return Ok(Side::Raw(mat.view()));
        }
        let prepared = Arc::new(match side {
            OperandSide::A => self.emu.try_prepare_a(mat)?,
            OperandSide::B => self.emu.try_prepare_b(mat)?,
        });
        self.cache.insert(key, prepared.clone());
        local.insert(id, prepared.clone());
        Ok(Side::Prep(prepared))
    }

    /// Execute jobs under the chosen schedule.
    fn run_jobs(&self, jobs: Vec<Job<'_>>, schedule: Schedule) {
        let _span = gemm_obs::span("batch_round", "batch");
        let run = |job: Job<'_>| self.run_job(job);
        match schedule {
            Schedule::InterItem => {
                gemm_obs::catalog::BATCH_ITEMS_INTER.add(jobs.len() as u64);
                jobs.into_par_iter().for_each(run)
            }
            Schedule::IntraItem => {
                gemm_obs::catalog::BATCH_ITEMS_INTRA.add(jobs.len() as u64);
                jobs.into_iter().for_each(run)
            }
        }
    }

    /// Execute one item with a pooled workspace.
    fn run_job(&self, job: Job<'_>) {
        let mut ws = self.pool.checkout();
        let a_in = match &job.a {
            Side::Raw(v) => OperandInput::RawView(*v),
            Side::Prep(p) => OperandInput::Prepared(p),
        };
        let b_in = match &job.b {
            Side::Raw(v) => OperandInput::RawView(*v),
            Side::Prep(p) => OperandInput::Prepared(p),
        };
        if let Err(e) = self.emu.try_execute_into_ws(
            a_in,
            b_in,
            job.m,
            job.k,
            job.n,
            &mut ws,
            job.parallel,
            job.out.as_mut_slice(),
        ) {
            *job.err = Some(e);
        }
    }

    /// Execute one SGEMM item: shared sides use their cached
    /// preparation, an unshared `B` is prepared in the worker, an
    /// unshared `A` is widened and converted raw; execute in f64, narrow
    /// into the f32 output.
    fn run_sgemm_job(&self, job: SgemmJob<'_>) {
        let SgemmJob {
            m,
            k,
            n,
            a,
            a_raw,
            b,
            b_raw,
            parallel,
            out,
            err,
        } = job;
        let mut body = || -> Result<(), EmulationError> {
            let pb = match &b {
                Some(p) => p.clone(),
                None => Arc::new(self.emu.try_prepare_b_view(&b_raw)?),
            };
            let a64: Vec<f64>;
            let a_in = match &a {
                Some(p) => OperandInput::Prepared(p),
                None => {
                    // Widen exactly into a dense column-major buffer (the
                    // one remaining copy of the f32 batched path; the f64
                    // path is copy-free end to end).
                    a64 = match a_raw.as_col_major_slice() {
                        Some(s) => s.iter().map(|&x| x as f64).collect(),
                        None => {
                            let (m, k) = a_raw.shape();
                            let mut out = Vec::with_capacity(m * k);
                            for j in 0..k {
                                for i in 0..m {
                                    out.push(a_raw.get(i, j) as f64);
                                }
                            }
                            out
                        }
                    };
                    OperandInput::Raw(&a64)
                }
            };
            let mut c64 = vec![0f64; m * n];
            let mut ws = self.pool.checkout();
            self.emu.try_execute_into_ws(
                a_in,
                OperandInput::Prepared(&pb),
                m,
                k,
                n,
                &mut ws,
                parallel,
                &mut c64,
            )?;
            for (o, &x) in out.as_mut_slice().iter_mut().zip(&c64) {
                *o = x as f32;
            }
            Ok(())
        };
        if let Err(e) = body() {
            *err = Some(e);
        }
    }
}

/// Data identity of a matrix: pointer + shape.
fn ident(m: &MatF64) -> (usize, usize, usize) {
    (m.as_slice().as_ptr() as usize, m.rows(), m.cols())
}

/// Count occurrences of each identity.
fn multiplicities<I: Iterator<Item = (usize, usize, usize)>>(
    ids: I,
) -> HashMap<(usize, usize, usize), usize> {
    let mut map = HashMap::new();
    for id in ids {
        *map.entry(id).or_insert(0usize) += 1;
    }
    map
}

/// First recorded per-item error, if any.
fn collect_errors(errs: Vec<Option<EmulationError>>) -> Result<(), EmulationError> {
    match errs.into_iter().flatten().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
