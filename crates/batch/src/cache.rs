//! A small LRU cache of [`PreparedOperand`]s keyed on operand identity.
//!
//! The batched runtime amortizes Algorithm 1's front end (lines 1–5) by
//! caching the prepared panels of operands that repeat — within one
//! batched call (a broadcast/stride-0 operand, a matrix referenced by
//! several group items) and **across** calls (the weight matrix of a
//! serving loop). Identity combines the operand's data pointer, length,
//! shape and pipeline configuration `(N, mode, backend, precision)`,
//! guarded by a
//! **full-content** fingerprint: a buffer that is freed and
//! coincidentally reallocated at the same address, or mutated in place —
//! even at a single element — changes the key, so stale panels can never
//! be served. Hashing every element costs one streaming pass over the
//! operand per lookup, far below the cost of the `N`-moduli preparation
//! it guards (and paid once per *call* for a shared operand, not per
//! item).

use gemm_dense::MatView;
use ozaki2::{BackendKind, Mode, OperandSide, PreparedOperand};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Mix one 64-bit word into an FNV-1a style running hash.
#[inline]
fn mix(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Full-content hash: four interleaved FNV streams (breaking the
/// multiply latency chain) folded together, covering every element.
fn fingerprint_bits(len: usize, word: impl Fn(usize) -> u64) -> u64 {
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64,
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
    ];
    let mut i = 0;
    while i + 4 <= len {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = mix(*lane, word(i + l));
        }
        i += 4;
    }
    while i < len {
        lanes[0] = mix(lanes[0], word(i));
        i += 1;
    }
    let mut h = mix(lanes[0], len as u64);
    h = mix(h, lanes[1]);
    h = mix(h, lanes[2]);
    mix(h, lanes[3])
}

/// Full-content fingerprint of an f64 operand buffer.
pub fn fingerprint_f64(data: &[f64]) -> u64 {
    fingerprint_bits(data.len(), |i| data[i].to_bits())
}

/// Full-content fingerprint of an f32 operand buffer.
pub fn fingerprint_f32(data: &[f32]) -> u64 {
    fingerprint_bits(data.len(), |i| data[i].to_bits() as u64)
}

/// Shared strided-view fingerprint body: logical elements only, in
/// column-major traversal with plain nested loops (no per-element
/// div/mod), four round-robin FNV lanes folded like [`fingerprint_bits`].
fn fingerprint_view_with<T: Copy>(v: &MatView<'_, T>, word: impl Fn(T) -> u64) -> u64 {
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64,
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
    ];
    let (rows, cols) = v.shape();
    let mut idx = 0usize;
    for j in 0..cols {
        for i in 0..rows {
            lanes[idx & 3] = mix(lanes[idx & 3], word(v.get(i, j)));
            idx += 1;
        }
    }
    let mut h = mix(lanes[0], idx as u64);
    h = mix(h, lanes[1]);
    h = mix(h, lanes[2]);
    mix(h, lanes[3])
}

/// Full-content fingerprint of the **logical** elements of a strided f64
/// view (column-major traversal; the inter-column gap elements belong to
/// neighbouring items and are excluded, so their mutation cannot fault an
/// unrelated entry). On a dense view this equals [`fingerprint_f64`] of
/// the element slice.
pub fn fingerprint_view_f64(v: &MatView<'_, f64>) -> u64 {
    if let Some(s) = v.as_col_major_slice() {
        return fingerprint_f64(s);
    }
    fingerprint_view_with(v, f64::to_bits)
}

/// [`fingerprint_view_f64`] for f32 views.
pub fn fingerprint_view_f32(v: &MatView<'_, f32>) -> u64 {
    if let Some(s) = v.as_col_major_slice() {
        return fingerprint_f32(s);
    }
    fingerprint_view_with(v, |x| x.to_bits() as u64)
}

/// Cache identity of one prepared operand (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperandKey {
    ptr: usize,
    len: usize,
    rows: usize,
    cols: usize,
    /// Leading dimension of the source view (`rows` for dense operands) —
    /// two windows of one parent buffer sharing a base pointer but read
    /// at different strides must not collide.
    ld: usize,
    /// Whether the source view stores elements row-major (a zero-copy
    /// transpose): same buffer, other layout ⇒ different operand.
    row_major: bool,
    side: OperandSide,
    n_moduli: usize,
    mode: Mode,
    /// Residue backend the preparation's moduli pool belongs to. Panels
    /// prepared under one backend are meaningless under another's pool,
    /// so the key must split on it — a prepared operand is never served
    /// across backends.
    backend: BackendKind,
    b64: bool,
    fingerprint: u64,
}

impl OperandKey {
    /// Key for an f64 operand slice with logical shape `rows x cols`.
    pub fn f64(
        data: &[f64],
        rows: usize,
        cols: usize,
        side: OperandSide,
        n_moduli: usize,
        mode: Mode,
        backend: BackendKind,
    ) -> Self {
        Self {
            ptr: data.as_ptr() as usize,
            len: data.len(),
            rows,
            cols,
            ld: rows,
            row_major: false,
            side,
            n_moduli,
            mode,
            backend,
            b64: true,
            fingerprint: fingerprint_f64(data),
        }
    }

    /// Shared body of the view-key constructors.
    #[allow(clippy::too_many_arguments)]
    fn from_view<T: Copy>(
        v: &MatView<'_, T>,
        side: OperandSide,
        n_moduli: usize,
        mode: Mode,
        backend: BackendKind,
        b64: bool,
        fingerprint: u64,
    ) -> Self {
        let (rows, cols) = v.shape();
        Self {
            ptr: v.data().as_ptr() as usize,
            len: v.min_len(),
            rows,
            cols,
            ld: v.ld(),
            row_major: v.layout() == gemm_dense::Layout::RowMajor,
            side,
            n_moduli,
            mode,
            backend,
            b64,
            fingerprint,
        }
    }

    /// Key for a (possibly `ld`-strided, either-layout) f64 operand view.
    pub fn f64_view(
        v: &MatView<'_, f64>,
        side: OperandSide,
        n_moduli: usize,
        mode: Mode,
        backend: BackendKind,
    ) -> Self {
        Self::from_view(
            v,
            side,
            n_moduli,
            mode,
            backend,
            true,
            fingerprint_view_f64(v),
        )
    }

    /// Key for a (possibly `ld`-strided, either-layout) f32 operand view.
    pub fn f32_view(
        v: &MatView<'_, f32>,
        side: OperandSide,
        n_moduli: usize,
        mode: Mode,
        backend: BackendKind,
    ) -> Self {
        Self::from_view(
            v,
            side,
            n_moduli,
            mode,
            backend,
            false,
            fingerprint_view_f32(v),
        )
    }

    /// Key for an f32 operand slice (SGEMM precision).
    #[allow(clippy::too_many_arguments)]
    pub fn f32(
        data: &[f32],
        rows: usize,
        cols: usize,
        side: OperandSide,
        n_moduli: usize,
        mode: Mode,
        backend: BackendKind,
    ) -> Self {
        Self {
            ptr: data.as_ptr() as usize,
            len: data.len(),
            rows,
            cols,
            ld: rows,
            row_major: false,
            side,
            n_moduli,
            mode,
            backend,
            b64: false,
            fingerprint: fingerprint_f32(data),
        }
    }
}

/// Lock shard count. Keys map to shards by identity hash, so concurrent
/// tenants of a batched call (distinct operands) lock distinct shards
/// instead of serialising on one cache-wide mutex.
const CACHE_SHARDS: usize = 8;

/// One lock shard: entries stamped with a global recency clock, plus its
/// slice of the probation queue.
struct CacheShard {
    /// `(key, preparation, last-used stamp)` — unordered; recency lives
    /// in the stamp, not the position.
    entries: Mutex<Vec<(OperandKey, Arc<PreparedOperand>, u64)>>,
    /// Recently missed keys (no values) — see [`OperandCache::repeat_miss`].
    probation: Mutex<VecDeque<OperandKey>>,
}

/// LRU cache mapping [`OperandKey`]s to shared [`PreparedOperand`]s.
/// Entries are `Arc`s, so an eviction never invalidates an execution in
/// flight. All methods take `&self`; the cache is internally locked —
/// **sharded** by key hash, so concurrent lookups of distinct operands do
/// not contend. Recency is tracked with a global monotonic clock stamped
/// on every hit or insert; eviction removes the globally oldest stamp
/// across all shards, so LRU semantics are identical to a single-lock
/// cache (only the lock granularity changed).
pub struct OperandCache {
    shards: [CacheShard; CACHE_SHARDS],
    capacity: usize,
    /// Total retained entries across shards.
    len: AtomicUsize,
    /// Monotonic recency clock; higher stamp = more recently used.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OperandKey {
    /// Shard index: identity hash over the fields that distinguish
    /// operands cheaply (pointer, length, fingerprint).
    fn shard(&self) -> usize {
        let mut h = mix(0xcbf2_9ce4_8422_2325, self.ptr as u64);
        h = mix(h, self.len as u64);
        h = mix(h, self.fingerprint);
        (h % CACHE_SHARDS as u64) as usize
    }
}

impl OperandCache {
    /// Cache retaining up to `capacity` preparations.
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: std::array::from_fn(|_| CacheShard {
                entries: Mutex::new(Vec::new()),
                probation: Mutex::new(VecDeque::new()),
            }),
            capacity,
            len: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Next recency stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A shard's entries, recovering from lock poisoning (cache code
    /// never panics mid-mutation; poisoning can only come from a caller
    /// panicking elsewhere while the process unwinds test threads).
    fn entries(
        &self,
        s: usize,
    ) -> std::sync::MutexGuard<'_, Vec<(OperandKey, Arc<PreparedOperand>, u64)>> {
        self.shards[s]
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Maximum retained preparations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current retained preparations (all shards).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that returned a cached preparation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Summed heap footprint of the retained preparations in bytes.
    pub fn bytes(&self) -> usize {
        (0..CACHE_SHARDS)
            .map(|s| {
                self.entries(s)
                    .iter()
                    .map(|(_, p, _)| p.bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Look up a preparation, refreshing its recency on hit.
    pub fn get(&self, key: &OperandKey) -> Option<Arc<PreparedOperand>> {
        let stamp = self.tick();
        let mut entries = self.entries(key.shard());
        if let Some(entry) = entries.iter_mut().find(|(k, _, _)| k == key) {
            entry.2 = stamp;
            let hit = entry.1.clone();
            drop(entries);
            self.hits.fetch_add(1, Ordering::Relaxed);
            gemm_obs::catalog::CACHE_HITS.inc();
            Some(hit)
        } else {
            drop(entries);
            self.misses.fetch_add(1, Ordering::Relaxed);
            gemm_obs::catalog::CACHE_MISSES.inc();
            None
        }
    }

    /// Insert (or refresh) a preparation, evicting the least recently
    /// used entries beyond capacity (globally — across all shards).
    pub fn insert(&self, key: OperandKey, value: Arc<PreparedOperand>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.tick();
        {
            let mut entries = self.entries(key.shard());
            if let Some(entry) = entries.iter_mut().find(|(k, _, _)| *k == key) {
                entry.1 = value;
                entry.2 = stamp;
                return;
            }
            entries.push((key, value, stamp));
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        while self.len.load(Ordering::Relaxed) > self.capacity {
            if !self.evict_oldest() {
                break;
            }
        }
    }

    /// Remove the entry with the globally smallest recency stamp. Locks
    /// one shard at a time (min scan, then targeted removal), so it can
    /// race another thread for the same victim; a vanished victim just
    /// means someone else evicted it, which is progress too.
    fn evict_oldest(&self) -> bool {
        let mut victim: Option<(usize, u64)> = None;
        for s in 0..CACHE_SHARDS {
            for (_, _, stamp) in self.entries(s).iter() {
                if victim.map(|(_, best)| *stamp < best).unwrap_or(true) {
                    victim = Some((s, *stamp));
                }
            }
        }
        let Some((s, stamp)) = victim else {
            return false; // nothing retained anywhere
        };
        let mut entries = self.entries(s);
        if let Some(pos) = entries.iter().position(|(_, _, st)| *st == stamp) {
            entries.remove(pos);
            drop(entries);
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        true
    }

    /// Record a miss for a *lone* operand (not shared within its call)
    /// and report whether the same key missed recently before — i.e. the
    /// operand is repeating across calls, so preparing and retaining it
    /// will pay off. First sightings return `false` (the caller should
    /// run the cheaper raw/pooled-workspace path instead of allocating
    /// panels that may never be reused); a repeat sighting returns `true`
    /// and leaves probation.
    pub fn repeat_miss(&self, key: &OperandKey) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut probation = self.shards[key.shard()]
            .probation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(pos) = probation.iter().position(|k| k == key) {
            probation.remove(pos);
            true
        } else {
            probation.push_front(key.clone());
            // Per-shard bound; keys are ~200 bytes, so even the summed
            // worst case stays trivial next to one retained preparation.
            probation.truncate(2 * self.capacity);
            false
        }
    }

    /// Drop every retained preparation (use after mutating a cached
    /// operand in place).
    pub fn clear(&self) {
        for s in 0..CACHE_SHARDS {
            let removed = {
                let mut entries = self.entries(s);
                let n = entries.len();
                entries.clear();
                n
            };
            self.len.fetch_sub(removed, Ordering::Relaxed);
            self.shards[s]
                .probation
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::workload::phi_matrix_f64;
    use ozaki2::Ozaki2;

    fn prep(seed: u64) -> (Vec<f64>, Arc<PreparedOperand>) {
        let b = phi_matrix_f64(8, 6, 0.5, seed, 1);
        let p = Ozaki2::new(8, Mode::Fast).prepare_b(&b);
        (b.into_vec(), Arc::new(p))
    }

    #[test]
    fn lru_evicts_oldest_and_refreshes_on_hit() {
        let cache = OperandCache::new(2);
        let (d1, p1) = prep(1);
        let (d2, p2) = prep(2);
        let (d3, p3) = prep(3);
        let key =
            |d: &[f64]| OperandKey::f64(d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
        cache.insert(key(&d1), p1);
        cache.insert(key(&d2), p2);
        assert!(cache.get(&key(&d1)).is_some()); // refresh 1 → MRU
        cache.insert(key(&d3), p3); // evicts 2 (LRU), not 1
        assert!(cache.get(&key(&d1)).is_some());
        assert!(cache.get(&key(&d2)).is_none());
        assert!(cache.get(&key(&d3)).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn fingerprint_guards_against_stale_content() {
        // Same pointer, same shape, mutated content: the full-content
        // fingerprint must differ — for a mutation of ANY single element
        // — so the lookup misses instead of serving stale panels.
        let cache = OperandCache::new(4);
        let (d0, p) = prep(4);
        for idx in 0..d0.len() {
            let mut d = d0.clone();
            let k1 = OperandKey::f64(&d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
            cache.insert(k1.clone(), p.clone());
            d[idx] += 1.0;
            let k2 = OperandKey::f64(&d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
            assert_ne!(k1, k2, "mutation at {idx} must change the key");
        }
    }

    #[test]
    fn repeat_miss_promotes_on_second_sighting() {
        let cache = OperandCache::new(4);
        let (d, _) = prep(6);
        let k = OperandKey::f64(&d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
        assert!(!cache.repeat_miss(&k), "first sighting stays raw");
        assert!(cache.repeat_miss(&k), "second sighting promotes");
        // Leaving probation: a third miss starts over.
        assert!(!cache.repeat_miss(&k));
        // Zero capacity never promotes.
        let none = OperandCache::new(0);
        assert!(!none.repeat_miss(&k));
        assert!(!none.repeat_miss(&k));
    }

    #[test]
    fn key_separates_sides_and_configs() {
        let d = vec![1.0f64; 48];
        let base = OperandKey::f64(&d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
        assert_ne!(
            base,
            OperandKey::f64(&d, 8, 6, OperandSide::A, 8, Mode::Fast, BackendKind::Int8)
        );
        assert_ne!(
            base,
            OperandKey::f64(&d, 8, 6, OperandSide::B, 9, Mode::Fast, BackendKind::Int8)
        );
        assert_ne!(
            base,
            OperandKey::f64(&d, 6, 8, OperandSide::B, 8, Mode::Fast, BackendKind::Int8)
        );
        // Backend is part of the identity: panels reduced against one
        // pool must never be served to an emulator on the other.
        assert_ne!(
            base,
            OperandKey::f64(
                &d,
                8,
                6,
                OperandSide::B,
                8,
                Mode::Fast,
                BackendKind::FmaBf16
            )
        );
    }

    #[test]
    fn cache_never_serves_across_backends() {
        // End to end: a preparation cached under the INT8 emulator's key
        // is invisible to an fma-bf16 emulator over the same bytes, and
        // the fma-backed preparation round-trips under its own key.
        let cache = OperandCache::new(4);
        let b = phi_matrix_f64(8, 6, 0.5, 3, 1);
        let int8 = Ozaki2::new(8, Mode::Fast);
        let fma = Ozaki2::new(8, Mode::Fast).with_backend(BackendKind::FmaBf16);
        let key_for = |emu: &Ozaki2| {
            OperandKey::f64(
                b.as_slice(),
                8,
                6,
                OperandSide::B,
                emu.n_moduli(),
                emu.mode(),
                emu.backend(),
            )
        };
        cache.insert(key_for(&int8), Arc::new(int8.prepare_b(&b)));
        assert!(cache.get(&key_for(&fma)).is_none(), "cross-backend hit");
        cache.insert(key_for(&fma), Arc::new(fma.try_prepare_b(&b).unwrap()));
        let served = cache.get(&key_for(&fma)).expect("own-backend hit");
        assert_eq!(served.backend(), BackendKind::FmaBf16);
        assert_eq!(
            cache
                .get(&key_for(&int8))
                .expect("int8 entry intact")
                .backend(),
            BackendKind::Int8
        );
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let cache = OperandCache::new(0);
        let (d, p) = prep(5);
        let k = OperandKey::f64(&d, 8, 6, OperandSide::B, 8, Mode::Fast, BackendKind::Int8);
        cache.insert(k.clone(), p);
        assert!(cache.get(&k).is_none());
        assert!(cache.is_empty());
    }
}
