//! Property tests pinning the batched runtime's core contract: every
//! batched result is **bit-identical** to the equivalent sequence of
//! per-item `Ozaki2::dgemm` / `sgemm` calls — across batch sizes 1–17,
//! ragged shape groups, shared-A / shared-B reuse, both scheduling
//! regimes, and (via the scalar-fallback CI job, `OZAKI_FORCE_SCALAR=1`)
//! every kernel dispatch.

use gemm_batch::{BatchedOzaki2, StridedBatchF32, StridedBatchF64};
use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
use gemm_dense::{MatF64, Matrix};
use ozaki2::{Mode, Ozaki2};
use proptest::prelude::*;

/// Flatten `count` matrices into one strided buffer with `pad` unused
/// elements between consecutive items (exercises non-trivial strides).
fn packed_stream(mats: &[MatF64], pad: usize) -> (Vec<f64>, usize) {
    let footprint = mats[0].as_slice().len();
    let stride = footprint + pad;
    let mut data = vec![0f64; (mats.len() - 1) * stride + footprint];
    for (i, m) in mats.iter().enumerate() {
        data[i * stride..i * stride + footprint].copy_from_slice(m.as_slice());
    }
    (data, stride)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform strided batches (batch sizes 1–17, padded strides) match
    /// the per-item emulator bitwise.
    #[test]
    fn strided_batch_matches_sequential(
        count in 1usize..=17,
        m in 1usize..=20,
        n in 1usize..=20,
        k in 1usize..=28,
        nmod in 4usize..=15,
        pad in 0usize..8,
        seed in 0u64..1000,
    ) {
        let a_mats: Vec<MatF64> =
            (0..count).map(|i| phi_matrix_f64(m, k, 0.6, seed + i as u64, 0)).collect();
        let b_mats: Vec<MatF64> =
            (0..count).map(|i| phi_matrix_f64(k, n, 0.6, seed + 100 + i as u64, 1)).collect();
        let (a_data, a_stride) = packed_stream(&a_mats, pad);
        let (b_data, b_stride) = packed_stream(&b_mats, 0);
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_batched(
            &StridedBatchF64::new(&a_data, m, k, a_stride, count),
            &StridedBatchF64::new(&b_data, k, n, b_stride, count),
        );
        let emu = Ozaki2::new(nmod, Mode::Fast);
        for i in 0..count {
            let want = emu.dgemm(&a_mats[i], &b_mats[i]);
            prop_assert_eq!(&got[i], &want, "item {} of {}", i, count);
        }
    }

    /// `ld`-strided batches (items are windows of a parent allocation,
    /// `ld > rows`) run zero-copy through the view path and match the
    /// per-item emulator bitwise. The inter-column gaps are poisoned with
    /// NaN: the pipeline must never read a non-logical element.
    #[test]
    fn ld_strided_batch_matches_sequential(
        count in 1usize..=9,
        m in 1usize..=14,
        n in 1usize..=12,
        k in 1usize..=20,
        nmod in 4usize..=15,
        ldpad in 1usize..5,
        accurate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let ld = m + ldpad;
        let footprint = (k - 1) * ld + m;
        let stride = footprint + 3;
        let a_mats: Vec<MatF64> =
            (0..count).map(|i| phi_matrix_f64(m, k, 0.6, seed + i as u64, 0)).collect();
        let mut a_data = vec![f64::NAN; (count - 1) * stride + footprint];
        for (t, mat) in a_mats.iter().enumerate() {
            for j in 0..k {
                for i in 0..m {
                    a_data[t * stride + i + j * ld] = mat[(i, j)];
                }
            }
        }
        let b = phi_matrix_f64(k, n, 0.6, seed + 500, 1);
        let mode = if accurate { Mode::Accurate } else { Mode::Fast };
        let runtime = BatchedOzaki2::new(nmod, mode);
        let got = runtime.dgemm_batched(
            &StridedBatchF64::with_ld(&a_data, m, k, ld, stride, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        let emu = Ozaki2::new(nmod, mode);
        for i in 0..count {
            let want = emu.dgemm(&a_mats[i], &b);
            prop_assert_eq!(&got[i], &want, "item {} (ld {} mode {:?})", i, ld, mode);
        }
    }

    /// Shared-B (weight-stationary) and shared-A broadcasts reuse one
    /// preparation and still match bitwise.
    #[test]
    fn broadcast_reuse_matches_sequential(
        count in 2usize..=17,
        m in 1usize..=16,
        n in 1usize..=16,
        k in 1usize..=24,
        nmod in 4usize..=15,
        seed in 0u64..1000,
        share_a in any::<bool>(),
    ) {
        let emu = Ozaki2::new(nmod, Mode::Fast);
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        if share_a {
            let a = phi_matrix_f64(m, k, 0.6, seed, 0);
            let b_mats: Vec<MatF64> =
                (0..count).map(|i| phi_matrix_f64(k, n, 0.6, seed + 1 + i as u64, 1)).collect();
            let (b_data, b_stride) = packed_stream(&b_mats, 3);
            let got = runtime.dgemm_batched(
                &StridedBatchF64::broadcast(&a, count),
                &StridedBatchF64::new(&b_data, k, n, b_stride, count),
            );
            for i in 0..count {
                prop_assert_eq!(&got[i], &emu.dgemm(&a, &b_mats[i]), "shared-A item {}", i);
            }
        } else {
            let b = phi_matrix_f64(k, n, 0.6, seed, 1);
            let a_mats: Vec<MatF64> =
                (0..count).map(|i| phi_matrix_f64(m, k, 0.6, seed + 1 + i as u64, 0)).collect();
            let (a_data, a_stride) = packed_stream(&a_mats, 0);
            let got = runtime.dgemm_batched(
                &StridedBatchF64::new(&a_data, m, k, a_stride, count),
                &StridedBatchF64::broadcast(&b, count),
            );
            for i in 0..count {
                prop_assert_eq!(&got[i], &emu.dgemm(&a_mats[i], &b), "shared-B item {}", i);
            }
        }
        // Exactly one preparation was cached for the shared side.
        prop_assert_eq!(runtime.cache().len(), 1);
    }

    /// Ragged shape groups — including repeated operand references —
    /// match the per-item emulator bitwise.
    #[test]
    fn ragged_group_matches_sequential(
        items in 1usize..=8,
        nmod in 4usize..=15,
        seed in 0u64..1000,
        share in 0usize..3, // 0: none, 1: share one B, 2: share one A
    ) {
        // Ragged shapes derived deterministically per item. Odd items
        // reference the one shared operand (`share`: 0 = none, 1 = one B
        // shared, 2 = one A shared); `None` below means "use the shared
        // matrix for this side".
        let dims = |i: usize, salt: u64| {
            1 + ((seed + salt).wrapping_mul(31).wrapping_add(i as u64 * 17) % 20) as usize
        };
        let shared_b = phi_matrix_f64(dims(7, 3), dims(8, 4), 0.6, seed + 500, 1);
        let shared_a = phi_matrix_f64(dims(9, 5), dims(7, 6), 0.6, seed + 600, 0);
        let mut owned: Vec<(Option<MatF64>, Option<MatF64>)> = Vec::new();
        for i in 0..items {
            if share == 1 && i % 2 == 1 {
                let a = phi_matrix_f64(dims(i, 0), shared_b.rows(), 0.6, seed + i as u64, 0);
                owned.push((Some(a), None));
            } else if share == 2 && i % 2 == 1 {
                let b = phi_matrix_f64(shared_a.cols(), dims(i, 1), 0.6, seed + i as u64, 1);
                owned.push((None, Some(b)));
            } else {
                let (mi, ni, ki) = (dims(i, 0), dims(i, 1), dims(i, 2));
                owned.push((
                    Some(phi_matrix_f64(mi, ki, 0.6, seed + i as u64, 0)),
                    Some(phi_matrix_f64(ki, ni, 0.6, seed + 50 + i as u64, 1)),
                ));
            }
        }
        let refs: Vec<(&MatF64, &MatF64)> = owned
            .iter()
            .map(|(a, b)| {
                (
                    a.as_ref().unwrap_or(&shared_a),
                    b.as_ref().unwrap_or(&shared_b),
                )
            })
            .collect();
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_group(&refs);
        let emu = Ozaki2::new(nmod, Mode::Fast);
        for (i, (a, b)) in refs.iter().enumerate() {
            prop_assert_eq!(&got[i], &emu.dgemm(a, b), "group item {} share={}", i, share);
        }
    }

    /// Batched SGEMM (shared and unshared B) matches per-item sgemm
    /// bitwise.
    #[test]
    fn sgemm_batch_matches_sequential(
        count in 1usize..=9,
        m in 1usize..=12,
        n in 1usize..=12,
        k in 1usize..=16,
        nmod in 4usize..=10,
        seed in 0u64..1000,
        share_b in any::<bool>(),
    ) {
        let a_mats: Vec<_> =
            (0..count).map(|i| phi_matrix_f32(m, k, 0.5, seed + i as u64, 0)).collect::<Vec<_>>();
        let mut a_data = Vec::new();
        for a in &a_mats {
            a_data.extend_from_slice(a.as_slice());
        }
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let emu = Ozaki2::new(nmod, Mode::Fast);
        if share_b {
            let b = phi_matrix_f32(k, n, 0.5, seed + 777, 1);
            let got = runtime.sgemm_batched(
                &StridedBatchF32::packed(&a_data, m, k, count),
                &StridedBatchF32::broadcast(&b, count),
            );
            for i in 0..count {
                prop_assert_eq!(&got[i], &emu.sgemm(&a_mats[i], &b), "sgemm shared item {}", i);
            }
        } else {
            let b_mats: Vec<_> =
                (0..count).map(|i| phi_matrix_f32(k, n, 0.5, seed + 100 + i as u64, 1)).collect::<Vec<_>>();
            let mut b_data = Vec::new();
            for b in &b_mats {
                b_data.extend_from_slice(b.as_slice());
            }
            let got = runtime.sgemm_batched(
                &StridedBatchF32::packed(&a_data, m, k, count),
                &StridedBatchF32::packed(&b_data, k, n, count),
            );
            for i in 0..count {
                prop_assert_eq!(&got[i], &emu.sgemm(&a_mats[i], &b_mats[i]), "sgemm item {}", i);
            }
        }
    }

    /// Accurate mode (uncached, monolithic per item) still matches the
    /// per-item emulator bitwise through the batched entry points.
    #[test]
    fn accurate_mode_batch_matches_sequential(
        count in 1usize..=6,
        m in 1usize..=12,
        n in 1usize..=12,
        k in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let nmod = 10usize;
        let a_mats: Vec<MatF64> =
            (0..count).map(|i| phi_matrix_f64(m, k, 1.5, seed + i as u64, 0)).collect();
        let b = phi_matrix_f64(k, n, 1.5, seed + 42, 1);
        let (a_data, a_stride) = packed_stream(&a_mats, 2);
        let runtime = BatchedOzaki2::new(nmod, Mode::Accurate);
        let got = runtime.dgemm_batched(
            &StridedBatchF64::new(&a_data, m, k, a_stride, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        let emu = Ozaki2::new(nmod, Mode::Accurate);
        for i in 0..count {
            prop_assert_eq!(&got[i], &emu.dgemm(&a_mats[i], &b), "accurate item {}", i);
        }
        // Accurate mode cannot cache one-sided preparations.
        prop_assert_eq!(runtime.cache().len(), 0);
    }
}

/// Steady-state batched serving performs zero heap growth beyond the
/// output buffers: the pool stops creating workspaces, every parked
/// workspace stays at its high-water footprint, and the cache holds the
/// one shared preparation. On a single worker the property is exact; on
/// a parallel pool (the `OZAKI_WORKERS` CI matrix) a later round may
/// momentarily overlap more checkouts than warmup ever did, so the
/// assertion weakens to the peak-concurrency bound `workers + 1` (the
/// submitter helps) — still "flat", just measured against the true
/// high-water mark instead of warmup's sample of it.
#[test]
fn batched_steady_state_allocates_nothing() {
    let (m, n, k, count, nmod) = (24usize, 20, 32, 12, 15);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let b = phi_matrix_f64(k, n, 0.5, 9, 1);
    let a_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(m, k, 0.5, i as u64, 0))
        .collect();
    let (a_data, a_stride) = packed_stream(&a_mats, 0);
    let a_batch = StridedBatchF64::new(&a_data, m, k, a_stride, count);
    let b_batch = StridedBatchF64::broadcast(&b, count);
    let mut outs: Vec<MatF64> = (0..count).map(|_| Matrix::zeros(m, n)).collect();

    // Warm up: pool and cache grow to their high-water marks.
    for _ in 0..2 {
        runtime
            .try_dgemm_batched_into(&a_batch, &b_batch, &mut outs)
            .unwrap();
    }
    let created = runtime.pool().created();
    let pool_bytes = runtime.pool().bytes();
    let cache_bytes = runtime.cache().bytes();
    assert!(created >= 1 && pool_bytes > 0 && cache_bytes > 0);
    assert_eq!(runtime.cache().len(), 1, "one shared preparation");

    // Steady state: nothing grows (exactly at W = 1, bounded by peak
    // checkout concurrency on a parallel pool).
    let workers = rayon::current_num_threads();
    for _ in 0..4 {
        runtime
            .try_dgemm_batched_into(&a_batch, &b_batch, &mut outs)
            .unwrap();
        if workers == 1 {
            assert_eq!(runtime.pool().created(), created, "no new workspaces");
            assert_eq!(runtime.pool().bytes(), pool_bytes, "no workspace realloc");
        } else {
            assert!(
                runtime.pool().created() <= workers + 1,
                "workspaces {} exceed peak concurrency {}",
                runtime.pool().created(),
                workers + 1
            );
        }
        assert_eq!(runtime.cache().bytes(), cache_bytes, "no cache churn");
        assert_eq!(runtime.cache().len(), 1);
    }
    // And the results are still exactly the per-item emulator's.
    let emu = Ozaki2::new(nmod, Mode::Fast);
    for (i, c) in outs.iter().enumerate() {
        assert_eq!(c, &emu.dgemm(&a_mats[i], &b), "item {i}");
    }
}

/// The cross-call LRU serves repeated shared operands without
/// re-preparing them.
#[test]
fn cache_hits_across_calls() {
    let (m, n, k, count, nmod) = (8usize, 8, 12, 4, 8);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let b = phi_matrix_f64(k, n, 0.5, 1, 1);
    let a = phi_matrix_f64(m, k, 0.5, 2, 0);
    let a_batch_data = a.as_slice().to_vec();
    for call in 0..3 {
        let _ = runtime.dgemm_batched(
            &StridedBatchF64::new(&a_batch_data, m, k, 0, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        assert_eq!(runtime.cache().len(), 2, "A and B preparations retained");
        if call > 0 {
            assert!(runtime.cache().hits() >= 2 * call, "call {call} must hit");
        }
    }
}

/// Single-item batches only pay for a preparation once the same operand
/// has been seen twice (probation): one-off operands stay on the raw
/// zero-alloc path, recurring weights still get amortized.
#[test]
fn single_item_batches_promote_on_repeat() {
    let (m, n, k, nmod) = (10usize, 8, 12, 8);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let a = phi_matrix_f64(m, k, 0.5, 1, 0);
    let b = phi_matrix_f64(k, n, 0.5, 2, 1);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let want = emu.dgemm(&a, &b);
    let call = || {
        runtime.dgemm_batched(
            &StridedBatchF64::broadcast(&a, 1),
            &StridedBatchF64::broadcast(&b, 1),
        )
    };
    assert_eq!(call()[0], want);
    assert_eq!(
        runtime.cache().len(),
        0,
        "first sighting of lone operands stays raw"
    );
    assert_eq!(call()[0], want);
    assert_eq!(runtime.cache().len(), 2, "second sighting promotes");
    let hits_before = runtime.cache().hits();
    assert_eq!(call()[0], want);
    assert!(runtime.cache().hits() >= hits_before + 2, "third call hits");
}

/// A broadcast SGEMM left operand is prepared once and cached, and the
/// results still match per-item sgemm bitwise.
#[test]
fn sgemm_shared_a_is_cached_and_bit_identical() {
    let (m, n, k, count, nmod) = (9usize, 7, 11, 5, 8);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let a = phi_matrix_f32(m, k, 0.5, 3, 0);
    let b_mats: Vec<_> = (0..count)
        .map(|i| phi_matrix_f32(k, n, 0.5, 10 + i as u64, 1))
        .collect::<Vec<_>>();
    let mut b_data = Vec::new();
    for b in &b_mats {
        b_data.extend_from_slice(b.as_slice());
    }
    let got = runtime.sgemm_batched(
        &StridedBatchF32::broadcast(&a, count),
        &StridedBatchF32::packed(&b_data, k, n, count),
    );
    assert_eq!(runtime.cache().len(), 1, "shared A prepared once");
    let emu = Ozaki2::new(nmod, Mode::Fast);
    for (i, b) in b_mats.iter().enumerate() {
        assert_eq!(got[i], emu.sgemm(&a, b), "item {i}");
    }
}

/// Mutating a cached operand in place must never serve stale panels:
/// the full-content fingerprint forces a re-preparation.
#[test]
fn in_place_mutation_never_serves_stale_panels() {
    let (m, n, k, count, nmod) = (8usize, 8, 10, 3, 8);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let a_data = vec![0.25f64; count * m * k];
    let mut b = phi_matrix_f64(k, n, 0.5, 4, 1);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    for round in 0..3 {
        // Mutate ONE element in place between rounds (same pointer,
        // same shape — only the content differs).
        b[(round, round)] += 1.0 + round as f64;
        let got = runtime.dgemm_batched(
            &StridedBatchF64::packed(&a_data, m, k, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        let a0 = gemm_dense::Matrix::from_vec(m, k, a_data[..m * k].to_vec());
        assert_eq!(got[0], emu.dgemm(&a0, &b), "round {round}");
    }
}

/// Per-item errors surface through the checked batched entry points.
#[test]
fn batched_propagates_item_errors() {
    let (m, n, k, count) = (4usize, 4, 4, 3);
    let runtime = BatchedOzaki2::new(8, Mode::Fast);
    let b = phi_matrix_f64(k, n, 0.5, 1, 1);
    let mut a_data = vec![0.5f64; count * m * k];
    a_data[m * k + 3] = f64::NAN; // poison item 1
    let err = runtime
        .try_dgemm_batched(
            &StridedBatchF64::packed(&a_data, m, k, count),
            &StridedBatchF64::broadcast(&b, count),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            ozaki2::EmulationError::NonFiniteInput {
                side: ozaki2::OperandSide::A,
                ..
            }
        ),
        "expected NonFiniteInput on side A, got {err:?}"
    );

    // Count mismatch.
    let ok_a = vec![0.5f64; 2 * m * k];
    assert_eq!(
        runtime
            .try_dgemm_batched(
                &StridedBatchF64::packed(&ok_a, m, k, 2),
                &StridedBatchF64::broadcast(&b, 3),
            )
            .unwrap_err(),
        ozaki2::EmulationError::ShapeMismatch
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Panic-hardening: a batch item that panics while holding a pooled
    /// workspace must not wedge the pool. The unwinding guard scrubs and
    /// returns the workspace, the poisoned free-list lock is recovered,
    /// and later checkouts see valid workspaces with flat byte
    /// accounting and bit-identical results.
    #[test]
    fn pool_survives_panicking_holders(
        m in 1usize..=16,
        n in 1usize..=16,
        k in 1usize..=24,
        nmod in 4usize..=12,
        seed in 0u64..1000,
    ) {
        use gemm_batch::WorkspacePool;
        let pool = WorkspacePool::new();
        let emu = Ozaki2::new(nmod, Mode::Fast);
        let a = phi_matrix_f64(m, k, 0.6, seed, 0);
        let b = phi_matrix_f64(k, n, 0.6, seed + 1, 1);
        let want = emu.dgemm(&a, &b);
        // Grow one workspace through a clean run.
        {
            let mut ws = pool.checkout();
            prop_assert_eq!(&emu.dgemm_ws(&a, &b, &mut ws), &want);
        }
        let grown = pool.bytes();
        // Panic while holding the checked-out workspace: the guard's
        // drop runs during unwinding (thread::panicking() is true) and
        // its free-list MutexGuard release poisons the pool lock.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ws = pool.checkout();
            let _ = emu.dgemm_ws(&a, &b, &mut ws);
            panic!("simulated batch-item failure");
        }));
        prop_assert!(result.is_err());
        // The workspace came back (scrubbed, still grown) and the pool
        // keeps serving checkouts off the recovered lock.
        prop_assert_eq!(pool.available(), 1);
        prop_assert_eq!(pool.bytes(), grown, "byte accounting must stay flat");
        for _ in 0..3 {
            let mut ws = pool.checkout();
            prop_assert_eq!(pool.created(), 1, "reuse, not re-create");
            prop_assert_eq!(&emu.dgemm_ws(&a, &b, &mut ws), &want);
            drop(ws);
            prop_assert_eq!(pool.bytes(), grown);
        }
    }
}
