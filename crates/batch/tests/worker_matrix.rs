//! Worker-count bit-identity matrix for the batched runtime.
//!
//! The batched scheduler's contract is that the **worker count is not
//! observable in the results**: every batched call is bit-identical to the
//! equivalent sequence of per-item `Ozaki2` calls, at any `OZAKI_WORKERS`,
//! under any steal interleaving, with ABFT recovery active or not. These
//! tests sweep the pool through `W ∈ {1, 2, 4, 8}` (and a set of steal
//! seeds at `W = 4`) and pin that contract against the sequential oracle.
//!
//! Both CI hardening jobs re-run this file: the fault-injection job
//! (`OZAKI_FAULT_INJECT` + `OZAKI_FAULT_POLICY=retry-then-scalar:2`)
//! exercises concurrent ABFT repair on pool workers, and the forced-scalar
//! job pins the same matrix over the scalar kernels.

use gemm_batch::{BatchedOzaki2, StridedBatchF32, StridedBatchF64};
use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
use gemm_dense::{MatF32, MatF64};
use gemm_engine::faultinject::{self, FaultSite};
use ozaki2::{FaultPolicy, Mode, Ozaki2};
use std::sync::{Mutex, MutexGuard};

/// Worker counts the matrix sweeps (satellite requirement: 1, 2, 4, 8).
const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

/// The pool is process-global; tests that reconfigure it serialise here.
static POOL_CONFIG: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` at each worker count in the matrix, restoring the machine
/// default (and a free-running steal order) afterwards.
fn for_each_worker_count(f: impl Fn(usize)) {
    let _guard = pool_lock();
    for w in WORKER_MATRIX {
        rayon::set_num_threads(w);
        assert_eq!(rayon::current_num_threads(), w);
        f(w);
    }
    rayon::set_steal_seed(0);
    rayon::set_num_threads(0);
}

/// Flatten matrices into one packed stream (stride = item footprint).
fn packed_stream(mats: &[MatF64]) -> Vec<f64> {
    let mut data = Vec::new();
    for m in mats {
        data.extend_from_slice(m.as_slice());
    }
    data
}

/// Low-intensity uniform batch (InterItem at W >= 2): every worker owns
/// whole items with its own checked-out workspace.
#[test]
fn interitem_dgemm_batch_is_bit_identical_at_every_worker_count() {
    let (m, n, k, nmod, count) = (24usize, 20usize, 12usize, 8usize, 13usize);
    let a_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(m, k, 0.6, 40 + i as u64, 0))
        .collect();
    let b_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(k, n, 0.6, 140 + i as u64, 1))
        .collect();
    let a_data = packed_stream(&a_mats);
    let b_data = packed_stream(&b_mats);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let oracle: Vec<MatF64> = (0..count)
        .map(|i| emu.dgemm(&a_mats[i], &b_mats[i]))
        .collect();

    for_each_worker_count(|w| {
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_batched(
            &StridedBatchF64::packed(&a_data, m, k, count),
            &StridedBatchF64::packed(&b_data, k, n, count),
        );
        for i in 0..count {
            assert_eq!(got[i], oracle[i], "item {i} diverged at W={w}");
        }
    });
}

/// High-intensity items (IntraItem: engine column stripes split across
/// the pool) with a broadcast B, so the shared-operand path runs too.
#[test]
fn intraitem_stripes_are_bit_identical_at_every_worker_count() {
    // Cube 192 at N = 8: intensity 2Ns/(9N+8) ≈ 38 > 32 ⇒ IntraItem.
    let (m, n, k, nmod, count) = (192usize, 192usize, 192usize, 8usize, 2usize);
    let a_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(m, k, 0.55, 7 + i as u64, 0))
        .collect();
    let b = phi_matrix_f64(k, n, 0.55, 99, 1);
    let a_data = packed_stream(&a_mats);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let oracle: Vec<MatF64> = a_mats.iter().map(|a| emu.dgemm(a, &b)).collect();

    for_each_worker_count(|w| {
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_batched(
            &StridedBatchF64::packed(&a_data, m, k, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        for i in 0..count {
            assert_eq!(got[i], oracle[i], "stripe item {i} diverged at W={w}");
        }
    });
}

/// Ragged groups straddling the intensity crossover, with repeated
/// operands (the dedup/sharing path), at every worker count.
#[test]
fn ragged_group_is_bit_identical_at_every_worker_count() {
    let nmod = 9;
    let big_a = phi_matrix_f64(72, 80, 0.5, 1, 0);
    let big_b = phi_matrix_f64(80, 64, 0.5, 2, 1);
    let shared_a = phi_matrix_f64(12, 16, 0.5, 3, 0);
    let smalls: Vec<(MatF64, MatF64)> = (0..9)
        .map(|i| {
            (
                phi_matrix_f64(10 + i, 14, 0.5, 50 + i as u64, 0),
                phi_matrix_f64(14, 8 + i, 0.5, 70 + i as u64, 1),
            )
        })
        .collect();
    let shared_bs: Vec<MatF64> = (0..4)
        .map(|i| phi_matrix_f64(16, 11, 0.5, 90 + i as u64, 1))
        .collect();

    let mut items: Vec<(&MatF64, &MatF64)> = vec![(&big_a, &big_b)];
    for (a, b) in &smalls {
        items.push((a, b));
    }
    for b in &shared_bs {
        items.push((&shared_a, b)); // shared-A identity, dedup path
    }

    let emu = Ozaki2::new(nmod, Mode::Fast);
    let oracle: Vec<MatF64> = items.iter().map(|(a, b)| emu.dgemm(a, b)).collect();

    for_each_worker_count(|w| {
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_group(&items);
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            assert_eq!(g, o, "group item {i} diverged at W={w}");
        }
    });
}

/// SGEMM batches at every worker count.
#[test]
fn sgemm_batch_is_bit_identical_at_every_worker_count() {
    let (m, n, k, nmod, count) = (18usize, 15usize, 20usize, 7usize, 11usize);
    let a_mats: Vec<MatF32> = (0..count)
        .map(|i| phi_matrix_f32(m, k, 0.5, 5 + i as u64, 0))
        .collect();
    let b = phi_matrix_f32(k, n, 0.5, 321, 1);
    let mut a_data = Vec::new();
    for a in &a_mats {
        a_data.extend_from_slice(a.as_slice());
    }
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let oracle: Vec<MatF32> = a_mats.iter().map(|a| emu.sgemm(a, &b)).collect();

    for_each_worker_count(|w| {
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.sgemm_batched(
            &StridedBatchF32::packed(&a_data, m, k, count),
            &StridedBatchF32::broadcast(&b, count),
        );
        for i in 0..count {
            assert_eq!(got[i], oracle[i], "sgemm item {i} diverged at W={w}");
        }
    });
}

/// Scheduling-permutation determinism: a fixed workload swept across
/// seeded steal orders (adversarial interleavings) and nested regions
/// must produce identical outputs with no lost items.
#[test]
fn seeded_steal_orders_leave_results_bit_identical() {
    let nmod = 8;
    // Ragged group: one striped item plus a tail of small InterItem fodder
    // — the mix keeps deques non-empty so steals actually happen.
    let big_a = phi_matrix_f64(80, 72, 0.5, 11, 0);
    let big_b = phi_matrix_f64(72, 96, 0.5, 12, 1);
    let smalls: Vec<(MatF64, MatF64)> = (0..12)
        .map(|i| {
            (
                phi_matrix_f64(9 + i % 5, 13, 0.5, 200 + i as u64, 0),
                phi_matrix_f64(13, 7 + i % 4, 0.5, 230 + i as u64, 1),
            )
        })
        .collect();
    let mut items: Vec<(&MatF64, &MatF64)> = vec![(&big_a, &big_b)];
    for (a, b) in &smalls {
        items.push((a, b));
    }
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let oracle: Vec<MatF64> = items.iter().map(|(a, b)| emu.dgemm(a, b)).collect();

    let _guard = pool_lock();
    rayon::set_num_threads(4);
    for seed in [1u64, 2, 3, 0x00ff_00ff, 0xdead_beef_cafe_f00d, u64::MAX] {
        rayon::set_steal_seed(seed);
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let got = runtime.dgemm_group(&items);
        assert_eq!(got.len(), oracle.len(), "lost items under seed {seed:#x}");
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            assert_eq!(g, o, "item {i} diverged under steal seed {seed:#x}");
        }
    }
    rayon::set_steal_seed(0);
    rayon::set_num_threads(0);
}

/// ABFT repair under concurrency: with a retry-then-scalar policy, an
/// armed single-shot fault lands on whichever worker reaches a hook
/// first, is detected by that item's checksums, and is repaired — the
/// batch stays bit-identical to the fault-free oracle at every worker
/// count and site.
#[test]
fn armed_fault_recovery_is_bit_identical_at_every_worker_count() {
    let (m, n, k, nmod, count) = (16usize, 16usize, 32usize, 8usize, 8usize);
    let a_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(m, k, 0.5, 60 + i as u64, 0))
        .collect();
    let b_mats: Vec<MatF64> = (0..count)
        .map(|i| phi_matrix_f64(k, n, 0.5, 160 + i as u64, 1))
        .collect();
    let a_data = packed_stream(&a_mats);
    let b_data = packed_stream(&b_mats);
    let emu = Ozaki2::new(nmod, Mode::Fast).with_fault_policy(FaultPolicy::Off);
    let oracle: Vec<MatF64> = (0..count)
        .map(|i| emu.dgemm(&a_mats[i], &b_mats[i]))
        .collect();

    let injected_before = faultinject::injected();
    for_each_worker_count(|w| {
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast)
            .with_fault_policy(FaultPolicy::RetryThenScalar { max_retries: 2 });
        for site in [
            FaultSite::PanelA,
            FaultSite::PanelB,
            FaultSite::Acc,
            FaultSite::Residue,
        ] {
            faultinject::arm_once(site);
            let got = runtime.dgemm_batched(
                &StridedBatchF64::packed(&a_data, m, k, count),
                &StridedBatchF64::packed(&b_data, k, n, count),
            );
            faultinject::disarm();
            for i in 0..count {
                assert_eq!(
                    got[i], oracle[i],
                    "item {i} not repaired at W={w} site={site:?}"
                );
            }
        }
    });
    // The INT8 path visits every armed site; only the forced-scalar CI
    // job (which skips the packed-panel kernels) may leave shots unfired.
    if std::env::var_os("OZAKI_FORCE_SCALAR").is_none() {
        assert!(
            faultinject::injected() > injected_before,
            "armed faults must actually fire somewhere in the matrix"
        );
    }
}
