//! Concurrency stress tests for the batched runtime's shared state.
//!
//! The `OperandCache` (sharded by key hash) and `WorkspacePool` (sharded
//! by worker index) are hit by every worker of every concurrent batched
//! call. These tests hammer both from many OS threads at once and pin
//! the three properties a lock-sharded design can silently lose: no
//! deadlock (the tests terminate), correct contents under churn (hits
//! return the exact `Arc` that was inserted; batched results stay
//! bit-identical), and flat steady-state allocation with panic-poison
//! recovery (a panicking holder never wedges or leaks the pool).

use gemm_batch::{BatchedOzaki2, OperandCache, OperandKey, StridedBatchF64, WorkspacePool};
use gemm_dense::workload::phi_matrix_f64;
use gemm_dense::MatF64;
use ozaki2::{BackendKind, Mode, OperandSide, Ozaki2, PreparedOperand};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tests that reconfigure the process-global pool serialise here.
static POOL_CONFIG: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Distinct operand matrices with their keys and (one-time) preparations.
fn tenants(count: usize, nmod: usize) -> Vec<(Vec<f64>, Arc<PreparedOperand>)> {
    let emu = Ozaki2::new(nmod, Mode::Fast);
    (0..count)
        .map(|i| {
            let b = phi_matrix_f64(8, 6, 0.5, 1000 + i as u64, 1);
            let p = Arc::new(emu.prepare_b(&b));
            (b.into_vec(), p)
        })
        .collect()
}

fn key_of(data: &[f64], nmod: usize) -> OperandKey {
    OperandKey::f64(
        data,
        8,
        6,
        OperandSide::B,
        nmod,
        Mode::Fast,
        BackendKind::Int8,
    )
}

/// N threads hammering get/insert/repeat_miss over an overlapping key set
/// with eviction churn (capacity < tenant count): every hit must return
/// the exact preparation inserted for that key, the cache must stay
/// within capacity, and the run must terminate (no deadlock, no lost
/// updates wedging a shard lock).
#[test]
fn operand_cache_contention_keeps_contents_exact() {
    let nmod = 8;
    let prepared = tenants(12, nmod);
    let cache = OperandCache::new(8); // smaller than the tenant set: churn
    let hits = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let prepared = &prepared;
            let cache = &cache;
            let hits = &hits;
            scope.spawn(move || {
                for round in 0..300usize {
                    let idx = (t * 7 + round * 5) % prepared.len();
                    let (data, prep) = &prepared[idx];
                    let key = key_of(data, nmod);
                    match cache.get(&key) {
                        Some(got) => {
                            assert!(
                                Arc::ptr_eq(&got, prep),
                                "hit returned a foreign preparation for tenant {idx}"
                            );
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // Probation then promote, like the runtime does.
                            if cache.repeat_miss(&key) {
                                cache.insert(key, Arc::clone(prep));
                            }
                        }
                    }
                }
            });
        }
    });

    assert!(
        cache.len() <= cache.capacity(),
        "capacity must hold after churn"
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "churn must still produce hits"
    );
    assert_eq!(
        cache.hits() + cache.misses(),
        8 * 300,
        "every lookup accounted exactly once"
    );
}

/// Concurrent batched calls against ONE shared runtime: results stay
/// bit-identical per caller and, once warmed, further rounds allocate no
/// new workspaces and no new cache bytes.
#[test]
fn shared_runtime_concurrent_calls_stay_exact_and_flat() {
    let _guard = pool_lock();
    rayon::set_num_threads(4);
    let (m, n, k, nmod, count) = (20usize, 16usize, 12usize, 7usize, 6usize);
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let b = phi_matrix_f64(k, n, 0.6, 9001, 1);

    let run_round = |thread: usize| {
        let a_mats: Vec<MatF64> = (0..count)
            .map(|i| phi_matrix_f64(m, k, 0.6, (thread * 100 + i) as u64, 0))
            .collect();
        let mut a_data = Vec::new();
        for a in &a_mats {
            a_data.extend_from_slice(a.as_slice());
        }
        let got = runtime.dgemm_batched(
            &StridedBatchF64::packed(&a_data, m, k, count),
            &StridedBatchF64::broadcast(&b, count),
        );
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &emu.dgemm(&a_mats[i], &b), "thread {thread} item {i}");
        }
    };

    let hammer = || {
        std::thread::scope(|scope| {
            for t in 0..6usize {
                scope.spawn(move || {
                    for _ in 0..4 {
                        run_round(t);
                    }
                });
            }
        });
    };

    hammer(); // warmup: grows the pool to its concurrent high-water mark
    let created = runtime.pool().created();
    let pool_bytes = runtime.pool().bytes();
    let cache_bytes = runtime.cache().bytes();
    hammer(); // steady state
              // Identical concurrent workload: the pool must serve from parked
              // workspaces. A tiny slack absorbs a phase-2 interleaving that
              // momentarily overlaps more checkouts than phase 1 ever did.
    assert!(
        runtime.pool().created() <= created + 2,
        "steady-state workspace allocations: {} grew past {} (+2)",
        runtime.pool().created(),
        created
    );
    assert!(
        runtime.pool().bytes() >= pool_bytes,
        "grown workspaces must survive the return"
    );
    assert_eq!(
        runtime.cache().bytes(),
        cache_bytes,
        "shared-operand cache must not regrow in steady state"
    );
    rayon::set_num_threads(0);
}

/// Panic-poison recovery under contention: threads checking workspaces
/// in and out while others panic mid-hold. The pool must keep serving,
/// every workspace must come back, and a poisoned shard lock must never
/// propagate to later checkouts.
#[test]
fn workspace_pool_survives_panicking_holders_under_contention() {
    let pool = WorkspacePool::new();
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let pool = &pool;
            scope.spawn(move || {
                for round in 0..60usize {
                    if (t + round) % 7 == 0 {
                        // Panic while holding: the guard's drop must scrub
                        // and return the workspace during the unwind.
                        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let _held = pool.checkout();
                            panic!("holder panic {t}:{round}");
                        }));
                        assert!(boom.is_err());
                    } else {
                        let _ws = pool.checkout();
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    // Everything returned; the pool still serves without allocating.
    assert_eq!(pool.available(), pool.created(), "no leaked workspaces");
    let created = pool.created();
    assert!(created <= 6, "never more workspaces than peak concurrency");
    {
        let _a = pool.checkout();
        let _b = pool.checkout();
    }
    assert_eq!(pool.created(), created, "post-stress checkouts reuse");
}
