//! Disabled-mode cost: with the gate off, every record path must be a
//! single relaxed load and an early return — no clock reads feeding
//! state, no thread-local ring creation, and above all **zero heap
//! allocations**. A counting wrapper around the system allocator proves
//! it: the measuring thread's allocation count must stay flat across a
//! million gated calls.
//!
//! Counting is per-thread (armed via a const-init thread-local flag the
//! allocator checks), because the claim under test is about *the record
//! paths on the calling thread* — the libtest harness keeps a watchdog
//! thread alive that occasionally allocates, and a process-global count
//! would flake on its heartbeats.
//!
//! This lives in its own test binary because the gate is process-global:
//! the other suites arm it, this one must keep it off.

use gemm_obs::{set_enabled, Counter, Histogram};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed only on the measuring thread, only inside the measured
    /// window. Const-init so reading it in the allocator never itself
    /// allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instrumentation_never_allocates() {
    // Force the gate off *before* measuring: the first `enabled()` query
    // otherwise reads OZAKI_OBS from the environment, and that lazy env
    // read is allowed to allocate. After this latch the hot paths must
    // not.
    set_enabled(false);

    static C: Counter = Counter::new("test_noop_total", "test");
    static H: Histogram = Histogram::new("test_noop_seconds", "test", "test_noop");

    // Warm everything the disabled paths could conceivably touch once.
    C.add(1);
    H.observe_ns(1);
    gemm_obs::record_span("warm", "test", 0, 1);
    let _ = gemm_obs::now_ns();
    drop(gemm_obs::span("warm", "test"));

    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1_000_000u64 {
        C.add(i);
        C.inc();
        H.observe_ns(i);
        gemm_obs::record_span("noop", "test", i, i + 1);
        let _g = gemm_obs::span("noop", "test");
        assert_eq!(gemm_obs::now_ns(), 0, "disabled clock must read 0");
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        after - before,
        0,
        "disabled-mode record paths must not allocate"
    );
    assert_eq!(C.value(), 0, "gated counter must stay untouched");
    assert_eq!(H.count(), 0, "gated histogram must stay untouched");
    assert_eq!(gemm_obs::dropped(), 0, "no span ring activity");
}
