//! Registry semantics under concurrency and at bucket boundaries.
//!
//! Every test in this binary arms the gate first: `set_enabled(true)`
//! overrides whatever `OZAKI_OBS` says in the environment, so the suite
//! behaves identically in plain CI and in the `OZAKI_OBS=1` job.

use gemm_obs::{set_enabled, Counter, Gauge, Histogram, PerWorkerGauge, TimeShare};
use std::sync::Arc;

/// 8 threads x 100k increments on one sharded counter must lose nothing:
/// the shards are plain relaxed atomics, so the aggregate is exact no
/// matter how the threads interleave or which shard each lands on.
#[test]
fn counter_concurrent_increments_are_exact() {
    set_enabled(true);
    static C: Counter = Counter::new("test_concurrent_total", "test");
    const THREADS: usize = 8;
    const PER: u64 = 100_000;
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER {
                    // Mix the entry points so both gated paths are hit.
                    if (i + t as u64).is_multiple_of(2) {
                        C.inc();
                    } else {
                        C.add(1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(C.value(), THREADS as u64 * PER);
}

/// Same exactness for a histogram: concurrent observations must neither
/// drop samples nor corrupt the sum.
#[test]
fn histogram_concurrent_observations_are_exact() {
    set_enabled(true);
    static H: Histogram = Histogram::new("test_conc_seconds", "test", "test_conc");
    const THREADS: usize = 8;
    const PER: u64 = 50_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for i in 1..=PER {
                    H.observe_ns(i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(H.count(), THREADS as u64 * PER);
    assert_eq!(H.sum_ns(), THREADS as u64 * (PER * (PER + 1) / 2));
}

/// Bucket boundaries are exact powers of two: `2^i` is the *first* value
/// of bucket `i`, `2^i - 1` the last value of bucket `i-1`. An
/// off-by-one here silently shifts every reported quantile.
#[test]
fn histogram_bucket_boundaries_are_exact() {
    // Pure index math, no gate involved.
    assert_eq!(Histogram::bucket_index(0), 0, "0 clamps into bucket 0");
    assert_eq!(Histogram::bucket_index(1), 0);
    for i in 1..47usize {
        let edge = 1u64 << i;
        assert_eq!(Histogram::bucket_index(edge), i, "2^{i} opens bucket {i}");
        assert_eq!(
            Histogram::bucket_index(edge - 1),
            i - 1,
            "2^{i} - 1 closes bucket {}",
            i - 1
        );
        assert_eq!(
            Histogram::bucket_upper_ns(i - 1),
            edge,
            "bucket {} upper edge",
            i - 1
        );
    }
    // Everything at and beyond 2^47 ns (~1.6 days) lands in the final
    // unbounded bucket.
    assert_eq!(Histogram::bucket_index(1 << 47), 47);
    assert_eq!(Histogram::bucket_index(u64::MAX), 47);
    assert_eq!(Histogram::bucket_upper_ns(47), u64::MAX);
}

/// Quantiles walk the cumulative counts and report the bucket's upper
/// edge — a deliberate over-estimate, never an under-estimate.
#[test]
fn histogram_quantiles_report_bucket_upper_edges() {
    set_enabled(true);
    static H: Histogram = Histogram::new("test_quant_seconds", "test", "test_quant");
    // 90 samples in [2^4, 2^5), 10 in [2^10, 2^11).
    for _ in 0..90 {
        H.observe_ns(20);
    }
    for _ in 0..10 {
        H.observe_ns(1300);
    }
    assert_eq!(H.quantile_ns(0.50), 32, "p50 is the fast bucket's edge");
    assert_eq!(H.quantile_ns(0.90), 32, "rank 90 still in the fast bucket");
    assert_eq!(H.quantile_ns(0.99), 2048, "p99 reaches the slow bucket");
    assert_eq!(H.quantile_ns(1.0), 2048);
    assert_eq!(H.quantile_ns(0.0), 32, "rank clamps to 1, not 0");
}

#[test]
fn gauge_and_worker_gauge_record_latest_values() {
    set_enabled(true);
    static G: Gauge = Gauge::new("test_gauge", "test");
    // Gauges are deliberately ungated (cold-path correctness signals).
    G.set(7);
    assert_eq!(G.value(), 7);
    G.set(-3);
    assert_eq!(G.value(), -3);

    static W: PerWorkerGauge = PerWorkerGauge::new("test_worker_gauge", "test");
    W.set(0, 5);
    W.set(3, 9);
    W.set(3, 2); // last write wins per slot
    let snap = W.snapshot();
    assert_eq!(snap, vec![(0, 5), (3, 2)], "only touched slots reported");
}

#[test]
fn timeshare_fraction_matches_accumulated_parts() {
    let t = TimeShare::new();
    assert_eq!(t.fraction(), 0.0, "empty share reads 0, not NaN");
    t.add(25, 100);
    t.add(25, 100);
    assert_eq!(t.part_ns(), 50);
    assert_eq!(t.total_ns(), 200);
    assert!((t.fraction() - 0.25).abs() < 1e-12);
}

/// The Prometheus rendering must expose the catalog metrics with their
/// exposition names and the histogram plumbing (`_bucket`/`_sum`/
/// `_count`, terminal `+Inf`).
#[test]
fn prometheus_text_exposes_catalog() {
    set_enabled(true);
    gemm_obs::catalog::EMULATED_GEMMS.add(0); // touch so the name exists
    gemm_obs::catalog::PHASE_FOLD.observe_ns(1_000_000);
    let text = gemm_obs::render_prometheus();
    for needle in [
        "# TYPE ozaki_emulated_gemms_total counter",
        "# TYPE ozaki_phase_fold_seconds histogram",
        "ozaki_phase_fold_seconds_sum",
        "ozaki_phase_fold_seconds_count",
        "ozaki_phase_fold_seconds_bucket{le=\"+Inf\"}",
        "# TYPE ozaki_serve_cache_hit_tracking_saturated gauge",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
