//! Property tests for the Chrome `trace_event` exporter, plus an
//! end-to-end [`ObsSession`] smoke proving exact span/histogram
//! reconciliation.
//!
//! The JSON validator below is deliberately tiny — a full parser would
//! be overkill and the container has none to lean on — but it checks
//! what Perfetto actually cares about: balanced structure, legal string
//! escaping, and numeric `ts`/`dur` fields that are never negative.

use gemm_obs::{render_chrome_trace, SpanEvent};
use proptest::prelude::*;

/// Minimal JSON well-formedness check: every brace/bracket balances
/// outside of strings, strings only contain legal escapes, and no
/// control character appears raw. Returns the number of objects seen.
fn validate_json(s: &str) -> Result<usize, String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut objects = 0usize;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                depth_obj += 1;
                objects += 1;
            }
            '}' => {
                depth_obj -= 1;
                if depth_obj < 0 {
                    return Err("unbalanced '}'".into());
                }
            }
            '[' => depth_arr += 1,
            ']' => {
                depth_arr -= 1;
                if depth_arr < 0 {
                    return Err("unbalanced ']'".into());
                }
            }
            '"' => loop {
                match chars.next() {
                    None => return Err("unterminated string".into()),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                        Some('u') => {
                            for _ in 0..4 {
                                match chars.next() {
                                    Some(h) if h.is_ascii_hexdigit() => {}
                                    other => return Err(format!("bad \\u escape: {other:?}")),
                                }
                            }
                        }
                        other => return Err(format!("bad escape: {other:?}")),
                    },
                    Some(c) if (c as u32) < 0x20 => {
                        return Err(format!("raw control char {:#x} in string", c as u32))
                    }
                    Some(_) => {}
                }
            },
            c if (c as u32) < 0x20 && c != '\n' && c != '\t' && c != '\r' => {
                return Err(format!("raw control char {:#x} outside string", c as u32))
            }
            _ => {}
        }
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!(
            "unbalanced structure: {depth_obj} objects, {depth_arr} arrays open"
        ));
    }
    Ok(objects)
}

/// Every numeric value of `field` in the rendered trace, in textual
/// order. `ts`/`dur` are microseconds rendered as `{:.3}` decimals.
fn field_values(s: &str, field: &str) -> Vec<f64> {
    let needle = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest
            .find([',', '}'])
            .expect("field value terminated by , or }");
        out.push(
            rest[..end]
                .trim()
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("non-numeric {field}: {e}")),
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary span soups — adversarial names included — must render
    /// to well-formed JSON with one trace event per span and strictly
    /// non-negative ts/dur microsecond fields.
    #[test]
    fn chrome_trace_is_well_formed(
        n_events in 0usize..40,
        epoch_ns in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        // Names cycle through an adversarial set: quotes, backslashes,
        // control characters, unicode — everything the escaper must
        // neutralise.
        const NAMES: [&str; 6] = [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "ctrl\u{1}\u{1f}chars",
            "newline\nand\ttab",
            "uni\u{2603}code",
        ];
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let events: Vec<SpanEvent> = (0..n_events)
            .map(|i| {
                let start_ns = epoch_ns + next() % 10_000_000;
                SpanEvent {
                    name: NAMES[i % NAMES.len()],
                    cat: NAMES[(i + 3) % NAMES.len()],
                    tid: next() % 8,
                    start_ns,
                    dur_ns: next() % 5_000_000,
                }
            })
            .collect();
        let json = render_chrome_trace(&events, epoch_ns);
        let objects = validate_json(&json).map_err(|e| {
            proptest::TestCaseError::Fail(format!("{e}\nin trace:\n{json}"))
        })?;
        // The envelope object plus one object per event.
        prop_assert_eq!(objects, 1 + events.len());
        let ts = field_values(&json, "ts");
        let dur = field_values(&json, "dur");
        prop_assert_eq!(ts.len(), events.len());
        prop_assert_eq!(dur.len(), events.len());
        for &v in ts.iter().chain(dur.iter()) {
            prop_assert!(v >= 0.0 && v.is_finite(), "bad ts/dur {v} in trace");
        }
    }
}

/// End-to-end smoke: spans recorded through `observe_span` reconcile
/// *exactly* with their paired histograms when nothing was dropped, and
/// the exported trace carries them all.
#[test]
fn session_reconciles_exactly() {
    gemm_obs::set_enabled(true);
    let session = gemm_obs::ObsSession::begin();
    let hist = &gemm_obs::catalog::SERVE_EXECUTE;
    let base = gemm_obs::now_ns();
    let durations = [1_500u64, 42_000, 7, 999_999];
    let mut t = base;
    for &d in &durations {
        gemm_obs::observe_span("execute_round", "serve", hist, t, d);
        t += d;
    }
    assert_eq!(session.dropped(), 0);
    let recs = session.reconcile();
    let r = recs
        .iter()
        .find(|r| r.span_name == "execute_round")
        .expect("execute_round reconciled");
    assert_eq!(r.hist_count, durations.len() as u64);
    assert_eq!(r.span_ns, durations.iter().sum::<u64>());
    assert_eq!(
        r.span_ns, r.hist_ns,
        "observe_span feeds the identical value to both sides"
    );
    assert!(r.within(0.0), "exact agreement needs no tolerance");
    let json = session.export_chrome_trace();
    assert!(validate_json(&json).is_ok());
    assert!(json.contains("\"execute_round\""));
}
