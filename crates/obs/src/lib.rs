//! # gemm_obs — unified observability for the emulation stack
//!
//! One instrumentation substrate for every runtime layer (pipeline, engine,
//! batch scheduler, work-stealing pool, serving runtime), replacing the
//! previous patchwork of ad-hoc timing structs. Three surfaces:
//!
//! - **Metrics registry** ([`registry`], [`catalog`]): monotonic counters,
//!   gauges, and fixed-bucket log₂-scale latency histograms (p50/p90/p99
//!   without allocation). Write paths are lock-free — each thread owns a
//!   cache-line-padded shard slot; readers aggregate across shards.
//! - **Structured spans** ([`mod@span`]): per-thread ring buffers of completed
//!   span events, exportable as chrome://tracing `trace_event` JSON via
//!   [`ObsSession::export_chrome_trace`] and openable in Perfetto.
//! - **Prometheus text exposition** ([`render_prometheus`]): the same
//!   registry rendered in the text format operators scrape and CI greps.
//!
//! ## The enable gate
//!
//! Observability is **off by default** and gated by `OZAKI_OBS` (any value
//! other than empty/`0`/`false`/`off` enables it), read once and latched
//! into an atomic; [`set_enabled`] overrides it programmatically. When
//! disabled every record path is a single relaxed atomic load followed by
//! an early return — no clock read, no thread-local access, no allocation —
//! so instrumented hot loops stay bit-identical and overhead-free. The
//! disabled-mode zero-allocation property is pinned by an allocator-counting
//! test (`tests/zero_alloc.rs`) and the enabled-mode overhead by a CI gate.
//!
//! The one deliberate exception: [`Gauge::set`] and a few cold-path
//! counters noted in [`catalog`] record even when disabled, because they
//! carry correctness-adjacent signals (e.g. the serving runtime's
//! cache-hit tracking saturation) that must not vanish with tracing off.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod registry;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use catalog::render_prometheus;
pub use registry::{Counter, Gauge, Histogram, LabelledCounter, PerWorkerGauge, TimeShare};
pub use span::{
    dropped, observe_span, record_span, render_chrome_trace, span, span_timed, ObsSession,
    Reconciliation, SpanEvent, SpanGuard,
};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state gate: unset until the first query, then latched on/off.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether observability is enabled. First call reads `OZAKI_OBS` and
/// latches the answer; after that it is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("OZAKI_OBS")
        .map(|v| {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off"))
        })
        .unwrap_or(false);
    // Racing first callers read the same environment and agree, so a plain
    // store (not compare-exchange) is fine.
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force the gate on or off, overriding `OZAKI_OBS`. Takes effect for all
/// subsequent record calls; existing recorded data is kept.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Process-wide span clock epoch, initialised on first enabled timestamp.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the observability epoch, or `0` when
/// disabled (so callers can unconditionally capture timestamps — the
/// gated record calls ignore them when off).
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    clock_ns()
}

/// The raw clock, bypassing the gate (span internals only).
pub(crate) fn clock_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}
