//! Structured spans: completed-interval events recorded into per-thread
//! ring buffers and exported as chrome://tracing `trace_event` JSON
//! (openable directly in Perfetto / `chrome://tracing`).
//!
//! Recording is wait-free in practice: each thread owns one ring guarded
//! by a mutex that only that thread locks on the write path (export
//! takes the same locks, briefly, from the reading thread). Rings are
//! fixed-capacity; once full, the oldest events are overwritten and a
//! global drop counter advances so sessions know their window is partial.
//!
//! An [`ObsSession`] brackets a measurement window: it snapshots every
//! histogram's exact sum at `begin`, and [`ObsSession::reconcile`]
//! compares each histogram's sum delta against the sum of its paired
//! span durations in the window. Spans and histograms paired through
//! [`observe_span`] record the *same* nanosecond value on both sides, so
//! with zero drops the reconciliation is exact — the 1% CI tolerance
//! only absorbs ring-drop truncation.

use crate::registry::Histogram;
use crate::{catalog, clock_ns, enabled};
use std::cell::OnceCell;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Events each thread's ring holds before overwriting the oldest.
pub const RING_CAP: usize = 16384;

/// One completed span: a named interval on one thread's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event name (pairs with a histogram's `span_name` when emitted via
    /// [`observe_span`]).
    pub name: &'static str,
    /// Category lane (`pipeline`, `serve`, `batch`, ...).
    pub cat: &'static str,
    /// Recording thread's stable trace id.
    pub tid: u64,
    /// Start, nanoseconds on the process observability clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    tid: u64,
    events: Vec<SpanEvent>,
    /// Overwrite cursor once `events` has grown to capacity.
    next: usize,
}

/// All per-thread rings ever created (threads may exit; their rings live
/// on so their events still export).
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Events overwritten by ring wraparound, process-wide.
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_RING: OnceCell<Arc<Mutex<Ring>>> = const { OnceCell::new() };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Record a completed span from explicit clock readings (both from
/// [`crate::now_ns`]); no-op while the gate is off.
#[inline]
pub fn record_span(name: &'static str, cat: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    let dur_ns = end_ns.saturating_sub(start_ns);
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring {
                tid,
                events: Vec::with_capacity(RING_CAP),
                next: 0,
            }));
            lock(&RINGS).push(ring.clone());
            ring
        });
        let mut r = lock(ring);
        let ev = SpanEvent {
            name,
            cat,
            tid: r.tid,
            start_ns,
            dur_ns,
        };
        if r.events.len() < RING_CAP {
            r.events.push(ev);
        } else {
            let at = r.next;
            r.events[at] = ev;
            r.next = (at + 1) % RING_CAP;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Record a span *and* its paired histogram observation from one
/// nanosecond value — the invariant [`ObsSession::reconcile`] relies on.
/// No-op while the gate is off.
#[inline]
pub fn observe_span(
    name: &'static str,
    cat: &'static str,
    hist: &Histogram,
    start_ns: u64,
    dur_ns: u64,
) {
    if !enabled() {
        return;
    }
    debug_assert_eq!(name, hist.span_name(), "span/histogram pairing mismatch");
    record_span(name, cat, start_ns, start_ns.saturating_add(dur_ns));
    hist.observe_ns(dur_ns);
}

/// RAII span: times from construction to drop. Construct via [`span`] or
/// [`span_timed`]; disarmed (free) while the gate is off.
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    hist: Option<&'static Histogram>,
    start_ns: u64,
    armed: bool,
}

/// Open a plain span (no histogram pairing).
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    let armed = enabled();
    SpanGuard {
        name,
        cat,
        hist: None,
        start_ns: if armed { clock_ns() } else { 0 },
        armed,
    }
}

/// Open a span that also feeds its paired histogram on drop.
#[inline]
pub fn span_timed(name: &'static str, cat: &'static str, hist: &'static Histogram) -> SpanGuard {
    let mut g = span(name, cat);
    g.hist = Some(hist);
    g
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed || !enabled() {
            return;
        }
        let end = clock_ns();
        let dur = end.saturating_sub(self.start_ns);
        match self.hist {
            Some(h) => observe_span(self.name, self.cat, h, self.start_ns, dur),
            None => record_span(self.name, self.cat, self.start_ns, end),
        }
    }
}

/// Process-wide count of span events lost to ring wraparound.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Every recorded event with `start_ns >= since`, across all threads,
/// sorted by start time.
fn snapshot_since(since: u64) -> Vec<SpanEvent> {
    let rings: Vec<Arc<Mutex<Ring>>> = lock(&RINGS).clone();
    let mut out = Vec::new();
    for ring in rings {
        let r = lock(&ring);
        out.extend(r.events.iter().filter(|e| e.start_ns >= since).copied());
    }
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render events as a chrome://tracing `trace_event` JSON document
/// (`ph:"X"` complete events, `ts`/`dur` in microseconds relative to
/// `epoch_ns`). Pure function — proptests validate its output shape
/// without touching the global rings.
pub fn render_chrome_trace(events: &[SpanEvent], epoch_ns: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_escaped(&mut out, ev.name);
        out.push_str(",\"cat\":");
        push_json_escaped(&mut out, ev.cat);
        let ts = ev.start_ns.saturating_sub(epoch_ns) as f64 / 1e3;
        let dur = ev.dur_ns as f64 / 1e3;
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                ev.tid
            ),
        );
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// One histogram's span-vs-histogram reconciliation over a session window.
#[derive(Clone, Copy, Debug)]
pub struct Reconciliation {
    /// Histogram exposition name.
    pub name: &'static str,
    /// The paired span event name.
    pub span_name: &'static str,
    /// Sum of paired span durations captured in the session window.
    pub span_ns: u64,
    /// Histogram `_sum` delta over the session window.
    pub hist_ns: u64,
    /// Histogram `_count` delta over the session window.
    pub hist_count: u64,
}

impl Reconciliation {
    /// Whether the two sums agree within `frac` relative tolerance.
    pub fn within(&self, frac: f64) -> bool {
        let (a, b) = (self.span_ns as f64, self.hist_ns as f64);
        (a - b).abs() <= frac * a.max(b)
    }
}

/// A measurement window over the global registry and rings: snapshot at
/// [`ObsSession::begin`], then export the window's Chrome trace and
/// reconcile span sums against histogram deltas at the end.
pub struct ObsSession {
    start_ns: u64,
    hist_sum_base: Vec<u64>,
    hist_count_base: Vec<u64>,
    dropped_base: u64,
}

impl ObsSession {
    /// Open a session window starting now.
    pub fn begin() -> Self {
        let hists = catalog::histograms();
        Self {
            start_ns: if enabled() { clock_ns() } else { 0 },
            hist_sum_base: hists.iter().map(|h| h.sum_ns()).collect(),
            hist_count_base: hists.iter().map(|h| h.count()).collect(),
            dropped_base: dropped(),
        }
    }

    /// All span events recorded in this session's window, sorted.
    pub fn events(&self) -> Vec<SpanEvent> {
        snapshot_since(self.start_ns)
    }

    /// Span events lost to ring wraparound during the window (when
    /// nonzero, [`ObsSession::reconcile`] sums are lower bounds).
    pub fn dropped(&self) -> u64 {
        dropped() - self.dropped_base
    }

    /// The window's Chrome trace JSON (timestamps relative to session
    /// start).
    pub fn export_chrome_trace(&self) -> String {
        render_chrome_trace(&self.events(), self.start_ns)
    }

    /// Write the Chrome trace to `path`.
    pub fn export_chrome_trace_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.export_chrome_trace())
    }

    /// Span-sum vs histogram-sum agreement for every histogram that
    /// recorded observations during the window.
    pub fn reconcile(&self) -> Vec<Reconciliation> {
        let events = self.events();
        catalog::histograms()
            .iter()
            .enumerate()
            .filter_map(|(i, h)| {
                let hist_count = h.count() - self.hist_count_base[i];
                if hist_count == 0 {
                    return None;
                }
                let span_ns = events
                    .iter()
                    .filter(|e| e.name == h.span_name())
                    .map(|e| e.dur_ns)
                    .sum();
                Some(Reconciliation {
                    name: h.name(),
                    span_name: h.span_name(),
                    span_ns,
                    hist_ns: h.sum_ns() - self.hist_sum_base[i],
                    hist_count,
                })
            })
            .collect()
    }
}
