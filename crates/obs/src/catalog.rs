//! The static metric catalog: every counter, gauge, and histogram the
//! runtime layers record, with their Prometheus exposition names, plus
//! the text renderer. One flat namespace (`ozaki_*`) so loadgen, the
//! serving runtime's `metrics_text()`, and CI all read the same numbers.
//!
//! See `docs/OBSERVABILITY.md` for the operator-facing catalog with
//! label semantics and the span hierarchy.

use crate::registry::{Counter, Gauge, Histogram, LabelledCounter, PerWorkerGauge};

// ---------------------------------------------------------------------------
// Pipeline (Algorithm 1) — crates/core
// ---------------------------------------------------------------------------

/// Line 1: exponent extraction / row-max scaling.
pub static PHASE_SCALE: Histogram = Histogram::new(
    "ozaki_phase_scale_seconds",
    "Algorithm 1 line 1: per-vector exponent extraction and scaling",
    "scale",
);
/// Lines 2–3: scale + truncate share of the fused sweep.
pub static PHASE_TRUNC: Histogram = Histogram::new(
    "ozaki_phase_trunc_seconds",
    "Algorithm 1 lines 2-3: truncation share of the fused trunc+convert sweep",
    "trunc",
);
/// Lines 4–5: residue conversion + engine packing share.
pub static PHASE_CONVERT: Histogram = Histogram::new(
    "ozaki_phase_convert_seconds",
    "Algorithm 1 lines 4-5: mod-p conversion and packing share of the fused sweep",
    "convert",
);
/// Line 6: INT8 engine GEMM time.
pub static PHASE_INT8_GEMM: Histogram = Histogram::new(
    "ozaki_phase_int8_gemm_seconds",
    "Algorithm 1 line 6: INT8 matrix-engine GEMM",
    "int8_gemm",
);
/// Line 7: mod-p reduction of engine accumulators.
pub static PHASE_MOD_REDUCE: Histogram = Histogram::new(
    "ozaki_phase_mod_reduce_seconds",
    "Algorithm 1 line 7: mod-p reduction of INT32 accumulators",
    "mod_reduce",
);
/// Lines 8–12: CRT fold back to floating point.
pub static PHASE_FOLD: Histogram = Histogram::new(
    "ozaki_phase_fold_seconds",
    "Algorithm 1 lines 8-12: CRT fold back to f64/f32",
    "fold",
);
/// ABFT checksum capture + verification time.
pub static PHASE_VERIFY: Histogram = Histogram::new(
    "ozaki_phase_verify_seconds",
    "ABFT checksum capture and verification",
    "verify",
);

/// Completed emulated GEMM calls (facade or prepared/batched path).
pub static EMULATED_GEMMS: Counter = Counter::new(
    "ozaki_emulated_gemms_total",
    "Completed emulated GEMM calls across all entry points",
);
/// Residue-plane INT8 GEMMs issued by completed emulations.
pub static INT8_GEMM_CALLS: Counter = Counter::new(
    "ozaki_int8_gemm_calls_total",
    "Residue-plane INT8 GEMMs issued by completed emulations",
);
/// Operands run through the prepare-side front end.
pub static PREPARED_OPERANDS: Counter = Counter::new(
    "ozaki_prepared_operands_total",
    "Operands converted by the prepare front end (prepare/execute split)",
);

// ---------------------------------------------------------------------------
// Engine — crates/engine
// ---------------------------------------------------------------------------

/// Panel-level INT8 engine invocations.
pub static ENGINE_INT8_CALLS: Counter = Counter::new(
    "ozaki_engine_int8_calls_total",
    "Panel-level INT8 engine GEMM invocations",
);
/// INT8 multiply-accumulate operations (m*n*k per invocation).
pub static ENGINE_INT8_MACS: Counter = Counter::new(
    "ozaki_engine_int8_macs_total",
    "INT8 multiply-accumulate operations issued to the engine",
);
/// Panel-level bf16-FMA engine invocations.
pub static ENGINE_FMA_CALLS: Counter = Counter::new(
    "ozaki_engine_fma_calls_total",
    "Panel-level bf16-FMA engine GEMM invocations",
);
/// bf16-FMA multiply-accumulate operations (m*n*k per invocation).
pub static ENGINE_FMA_MACS: Counter = Counter::new(
    "ozaki_engine_fma_macs_total",
    "bf16-FMA multiply-accumulate operations issued to the engine",
);
/// Emulations executed per selected backend (the advisor/builder choice).
pub static BACKEND_SELECTED: LabelledCounter = LabelledCounter::new(
    "ozaki_backend_selected_total",
    "Completed emulations by the residue backend that executed them",
    "backend",
    &["int8", "fma-bf16"],
);

// ---------------------------------------------------------------------------
// ABFT — crates/core (fault-tolerant executor)
// ---------------------------------------------------------------------------

/// Checksum mismatches detected.
pub static ABFT_DETECTIONS: Counter = Counter::new(
    "ozaki_abft_detections_total",
    "ABFT checksum mismatches detected",
);
/// Plane GEMM retries triggered by detections.
pub static ABFT_RETRIES: Counter = Counter::new(
    "ozaki_abft_retries_total",
    "Residue-plane retries triggered by ABFT detections",
);
/// Scalar-oracle fallbacks after exhausted retries.
pub static ABFT_SCALAR_FALLBACKS: Counter = Counter::new(
    "ozaki_abft_scalar_fallbacks_total",
    "Scalar-kernel fallbacks after exhausted retries",
);
/// Faults that survived the whole recovery policy.
pub static ABFT_UNRECOVERED: Counter = Counter::new(
    "ozaki_abft_unrecovered_total",
    "Faults not recovered by the active policy",
);

// ---------------------------------------------------------------------------
// Batch runtime — crates/batch
// ---------------------------------------------------------------------------

/// Prepared-operand cache hits.
pub static CACHE_HITS: Counter = Counter::new(
    "ozaki_operand_cache_hits_total",
    "Prepared-operand LRU cache hits",
);
/// Prepared-operand cache misses (fresh conversions).
pub static CACHE_MISSES: Counter = Counter::new(
    "ozaki_operand_cache_misses_total",
    "Prepared-operand LRU cache misses",
);
/// Workspace pool checkouts.
pub static WORKSPACE_CHECKOUTS: Counter = Counter::new(
    "ozaki_workspace_checkouts_total",
    "Workspace pool checkouts",
);
/// Workspaces freshly allocated by the pool (checkouts that missed).
pub static WORKSPACE_CREATED: Counter = Counter::new(
    "ozaki_workspace_created_total",
    "Workspaces freshly allocated by the pool",
);
/// Batch items dispatched via the inter-GEMM (coalesced stripe) schedule.
pub static BATCH_ITEMS_INTER: Counter = Counter::new(
    "ozaki_batch_items_inter_total",
    "Batch items dispatched on the inter-GEMM (parallel-across-items) schedule",
);
/// Batch items dispatched via the intra-GEMM (solo stripe) schedule.
pub static BATCH_ITEMS_INTRA: Counter = Counter::new(
    "ozaki_batch_items_intra_total",
    "Batch items dispatched on the intra-GEMM (parallel-within-item) schedule",
);

// ---------------------------------------------------------------------------
// Work-stealing pool — crates/shims/rayon
// ---------------------------------------------------------------------------

/// Successful steals (victim queue drained by another worker).
pub static POOL_STEALS: Counter = Counter::new(
    "ozaki_pool_steals_total",
    "Successful task steals between pool workers",
);
/// Worker parks (timed sleep when no runnable task was found).
pub static POOL_PARKS: Counter = Counter::new(
    "ozaki_pool_parks_total",
    "Worker parks after an empty find-task sweep",
);
/// Tasks executed by pool workers.
pub static POOL_TASKS: Counter = Counter::new(
    "ozaki_pool_tasks_total",
    "Tasks executed by pool workers (including the submitting thread)",
);
/// Victim queue depth observed at steal time, per worker.
pub static POOL_QUEUE_DEPTH: PerWorkerGauge = PerWorkerGauge::new(
    "ozaki_pool_queue_depth",
    "Victim queue depth sampled at steal time, labelled by worker",
);

// ---------------------------------------------------------------------------
// Serving runtime — crates/serve
// ---------------------------------------------------------------------------

/// Requests admitted into the submission queue.
pub static SERVE_SUBMITTED: Counter = Counter::new(
    "ozaki_serve_submitted_total",
    "Requests admitted into the serving queue",
);
/// Requests completed successfully.
pub static SERVE_COMPLETED: Counter = Counter::new(
    "ozaki_serve_completed_total",
    "Requests completed by the serving runtime",
);
/// Requests shed past their deadline.
pub static SERVE_SHED: Counter = Counter::new(
    "ozaki_serve_shed_total",
    "Requests shed at their deadline before execution",
);
/// Execution rounds dispatched (coalesced group or solo).
pub static SERVE_ROUNDS: Counter = Counter::new(
    "ozaki_serve_rounds_total",
    "Execution rounds dispatched (coalesced groups and solo stripes)",
);
/// Times the cache-hit identity set hit its cap and was cleared.
/// **Always recorded** (cold path, correctness-adjacent — see the gauge).
pub static SERVE_SEEN_RESETS: Counter = Counter::new(
    "ozaki_serve_seen_resets_total",
    "Times the per-tenant operand-identity set saturated and was cleared",
);
/// 1 once cache-hit tracking has saturated at least once since start:
/// `TenantStats.cache_hits` undercounts from then on. **Always recorded.**
pub static SERVE_SEEN_SATURATED: Gauge = Gauge::new(
    "ozaki_serve_cache_hit_tracking_saturated",
    "1 if the operand-identity set ever saturated (cache_hits undercounts)",
);

/// Admission-to-dispatch queue wait.
pub static SERVE_QUEUE_WAIT: Histogram = Histogram::new(
    "ozaki_serve_queue_wait_seconds",
    "Request wait from admission to dispatch into an execution round",
    "queue_wait",
);
/// Execution-round duration (batched execute of one admitted group).
pub static SERVE_EXECUTE: Histogram = Histogram::new(
    "ozaki_serve_execute_seconds",
    "Execution-round duration (one batched execute call)",
    "execute_round",
);
/// Coalesce-window residency: window open to flush.
pub static SERVE_COALESCE_WINDOW: Histogram = Histogram::new(
    "ozaki_serve_coalesce_window_seconds",
    "Coalesce-window residency from first pending request to flush",
    "coalesce_window",
);

// ---------------------------------------------------------------------------
// Listings
// ---------------------------------------------------------------------------

static ALL_COUNTERS: [&Counter; 25] = [
    &EMULATED_GEMMS,
    &INT8_GEMM_CALLS,
    &PREPARED_OPERANDS,
    &ENGINE_INT8_CALLS,
    &ENGINE_INT8_MACS,
    &ENGINE_FMA_CALLS,
    &ENGINE_FMA_MACS,
    &ABFT_DETECTIONS,
    &ABFT_RETRIES,
    &ABFT_SCALAR_FALLBACKS,
    &ABFT_UNRECOVERED,
    &CACHE_HITS,
    &CACHE_MISSES,
    &WORKSPACE_CHECKOUTS,
    &WORKSPACE_CREATED,
    &BATCH_ITEMS_INTER,
    &BATCH_ITEMS_INTRA,
    &POOL_STEALS,
    &POOL_PARKS,
    &POOL_TASKS,
    &SERVE_SUBMITTED,
    &SERVE_COMPLETED,
    &SERVE_SHED,
    &SERVE_ROUNDS,
    &SERVE_SEEN_RESETS,
];

static ALL_GAUGES: [&Gauge; 1] = [&SERVE_SEEN_SATURATED];

static ALL_LABELLED_COUNTERS: [&LabelledCounter; 1] = [&BACKEND_SELECTED];

static ALL_WORKER_GAUGES: [&PerWorkerGauge; 1] = [&POOL_QUEUE_DEPTH];

static ALL_HISTOGRAMS: [&Histogram; 10] = [
    &PHASE_SCALE,
    &PHASE_TRUNC,
    &PHASE_CONVERT,
    &PHASE_INT8_GEMM,
    &PHASE_MOD_REDUCE,
    &PHASE_FOLD,
    &PHASE_VERIFY,
    &SERVE_QUEUE_WAIT,
    &SERVE_EXECUTE,
    &SERVE_COALESCE_WINDOW,
];

/// Every registered counter, in exposition order.
pub fn counters() -> &'static [&'static Counter] {
    &ALL_COUNTERS
}

/// Every registered plain gauge.
pub fn gauges() -> &'static [&'static Gauge] {
    &ALL_GAUGES
}

/// Every registered labelled counter family.
pub fn labelled_counters() -> &'static [&'static LabelledCounter] {
    &ALL_LABELLED_COUNTERS
}

/// Every registered per-worker gauge.
pub fn worker_gauges() -> &'static [&'static PerWorkerGauge] {
    &ALL_WORKER_GAUGES
}

/// Every registered histogram. Sessions reconcile span sums against this
/// list (each histogram names its paired span — `Histogram::span_name`).
pub fn histograms() -> &'static [&'static Histogram] {
    &ALL_HISTOGRAMS
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

use std::fmt::Write as _;

/// Render the whole catalog in the Prometheus text exposition format
/// (counters, gauges, labelled per-worker gauges, and histograms with
/// cumulative `_bucket{le=...}` series in seconds plus exact `_sum` /
/// `_count`). Histograms emit only their populated bucket range (plus
/// `+Inf`), which the format permits and keeps scrapes compact.
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(4096);
    for c in counters() {
        let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        let _ = writeln!(out, "{} {}", c.name(), c.value());
    }
    for c in labelled_counters() {
        let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        for (value, total) in c.snapshot() {
            let _ = writeln!(out, "{}{{{}=\"{value}\"}} {total}", c.name(), c.label_key());
        }
    }
    for g in gauges() {
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        let _ = writeln!(out, "{} {}", g.name(), g.value());
    }
    for g in worker_gauges() {
        let snap = g.snapshot();
        if snap.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        for (w, v) in snap {
            let _ = writeln!(out, "{}{{worker=\"{w}\"}} {v}", g.name());
        }
    }
    for h in histograms() {
        let _ = writeln!(out, "# HELP {} {}", h.name(), h.help());
        let _ = writeln!(out, "# TYPE {} histogram", h.name());
        let agg = h.buckets_total();
        let total: u64 = agg.iter().sum();
        // The final unbounded bucket renders only as +Inf.
        let last_used = agg
            .iter()
            .rposition(|&c| c != 0)
            .map(|l| l.min(agg.len() - 2));
        let mut cum = 0u64;
        if let Some(last) = last_used {
            for (i, c) in agg.iter().enumerate().take(last + 1) {
                cum += c;
                let le = crate::registry::Histogram::bucket_upper_ns(i) as f64 / 1e9;
                let _ = writeln!(out, "{}_bucket{{le=\"{le:.9}\"}} {cum}", h.name());
            }
        }
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {total}", h.name());
        let _ = writeln!(out, "{}_sum {:.9}", h.name(), h.sum_ns() as f64 / 1e9);
        let _ = writeln!(out, "{}_count {}", h.name(), h.count());
    }
    out
}
