//! Lock-free metric primitives: counters, gauges, log₂-bucket histograms.
//!
//! Write paths shard by thread: each thread draws a stable slot index from
//! a global counter (mod [`SHARDS`]) on first touch, then only ever writes
//! its own cache-line-padded slot with relaxed atomics — no CAS loops, no
//! contended lines. Readers aggregate across all shards, so totals are
//! linearizable for quiesced writers (every increment issued before the
//! read is included) even though concurrent reads may observe partial
//! sums. The shard id deliberately does *not* come from the rayon worker
//! index: that would invert the dependency graph (the rayon shim itself
//! instruments through this crate).

use crate::enabled;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Per-thread slots each sharded metric maintains. Threads beyond this
/// many hash onto shared slots — still correct (atomics), just contended.
pub const SHARDS: usize = 32;

/// Slots a [`PerWorkerGauge`] tracks; workers beyond this wrap around.
pub const WORKER_SLOTS: usize = 64;

/// Histogram bucket count: bucket `i` holds durations in `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also absorbs 0 ns; the last bucket is unbounded
/// above). 48 buckets span 1 ns .. ~3.26 days.
pub const BUCKETS: usize = 48;

/// Pad to a cache line so two shards never share one.
#[repr(align(64))]
struct Pad<T>(T);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stable shard slot (assigned round-robin on first touch).
#[inline]
fn shard() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter (Prometheus `counter`), sharded per thread.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    shards: [Pad<AtomicU64>; SHARDS],
}

impl Counter {
    /// A zeroed counter with its exposition name and help line.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            shards: [const { Pad(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add `v`; no-op while the gate is off.
    #[inline]
    pub fn add(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.add_always(v);
    }

    /// Add `v` regardless of the gate (cold-path correctness signals only).
    #[inline]
    pub fn add_always(&self, v: u64) {
        self.shards[shard()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one; no-op while the gate is off.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Aggregate total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Exposition name (`ozaki_*_total`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help line for `# HELP`.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

// ---------------------------------------------------------------------------
// LabelledCounter
// ---------------------------------------------------------------------------

/// How many label values one [`LabelledCounter`] can carry. Small on
/// purpose: labelled series are for low-cardinality enumerations fixed at
/// compile time (backend names), never for unbounded identifiers.
pub const LABEL_SLOTS: usize = 8;

/// A monotonic counter family with one fixed, compile-time label
/// dimension (Prometheus `counter` with one label), rendered as one
/// series per label value (`name{key="value"} v`). Each series is a
/// full sharded [`Counter`]-style slot set, so the write path has the
/// same cost and contention profile as an unlabelled counter.
pub struct LabelledCounter {
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    label_values: &'static [&'static str],
    slots: [[Pad<AtomicU64>; SHARDS]; LABEL_SLOTS],
}

impl LabelledCounter {
    /// A zeroed counter family. `label_values` fixes the full series set
    /// (at most [`LABEL_SLOTS`] values; excess values are ignored —
    /// keep the list short and exhaustive).
    pub const fn new(
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label_values: &'static [&'static str],
    ) -> Self {
        Self {
            name,
            help,
            label_key,
            label_values,
            slots: [const { [const { Pad(AtomicU64::new(0)) }; SHARDS] }; LABEL_SLOTS],
        }
    }

    /// Add `v` to the series at `index` (the position of its label value
    /// in the constructor list); no-op while the gate is off or when the
    /// index is out of range.
    #[inline]
    pub fn add(&self, index: usize, v: u64) {
        if !enabled() || index >= self.label_values.len().min(LABEL_SLOTS) {
            return;
        }
        self.slots[index][shard()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment the series at `index` by one.
    #[inline]
    pub fn inc(&self, index: usize) {
        self.add(index, 1);
    }

    /// Increment the series whose label value equals `value` (no-op for
    /// unknown values — callers with a stable index should prefer
    /// [`LabelledCounter::inc`]).
    #[inline]
    pub fn inc_value(&self, value: &str) {
        if let Some(i) = self.label_values.iter().position(|&v| v == value) {
            self.inc(i);
        }
    }

    /// Aggregate total of the series at `index` (0 when out of range).
    pub fn value(&self, index: usize) -> u64 {
        if index >= self.label_values.len().min(LABEL_SLOTS) {
            return 0;
        }
        self.slots[index]
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// `(label_value, total)` for every series, in constructor order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.label_values
            .iter()
            .take(LABEL_SLOTS)
            .enumerate()
            .map(|(i, &v)| (v, self.value(i)))
            .collect()
    }

    /// Exposition name (`ozaki_*_total`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help line for `# HELP`.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// The label key every series carries.
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-write-wins gauge. **Not gated**: gauges carry cold-path state
/// signals (saturation flags, configured limits) that must survive a
/// disabled registry; their write rate is negligible by construction.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicI64::new(0),
        }
    }

    /// Store `v` (always recorded — see the type docs).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Exposition name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help line for `# HELP`.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

// ---------------------------------------------------------------------------
// PerWorkerGauge
// ---------------------------------------------------------------------------

/// A gauge with one slot per pool worker, rendered as labelled series
/// (`name{worker="3"} v`). Only slots that were ever written are exported.
pub struct PerWorkerGauge {
    name: &'static str,
    help: &'static str,
    /// Bitmask of slots that have been written at least once.
    touched: AtomicU64,
    slots: [AtomicI64; WORKER_SLOTS],
}

impl PerWorkerGauge {
    /// A gauge with all slots zeroed and untouched.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            touched: AtomicU64::new(0),
            slots: [const { AtomicI64::new(0) }; WORKER_SLOTS],
        }
    }

    /// Store `v` into `worker`'s slot; no-op while the gate is off.
    #[inline]
    pub fn set(&self, worker: usize, v: i64) {
        if !enabled() {
            return;
        }
        let w = worker % WORKER_SLOTS;
        self.slots[w].store(v, Ordering::Relaxed);
        self.touched.fetch_or(1u64 << w, Ordering::Relaxed);
    }

    /// `(worker, value)` for every slot written at least once.
    pub fn snapshot(&self) -> Vec<(usize, i64)> {
        let touched = self.touched.load(Ordering::Relaxed);
        (0..WORKER_SLOTS)
            .filter(|w| touched & (1u64 << w) != 0)
            .map(|w| (w, self.slots[w].load(Ordering::Relaxed)))
            .collect()
    }

    /// Exposition name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help line for `# HELP`.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// One shard of a histogram: bucket counts plus an exact nanosecond sum
/// (the sum is what lets Chrome-trace span totals reconcile against the
/// exposition to better than bucket resolution).
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

/// A latency histogram with [`BUCKETS`] fixed log₂ buckets, sharded per
/// thread. Quantile reads walk the aggregated cumulative counts and
/// return the upper edge of the containing bucket — no allocation beyond
/// one stack array, no locks.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    span_name: &'static str,
    shards: [Pad<HistShard>; SHARDS],
}

impl Histogram {
    /// A zeroed histogram. `span_name` is the span event name this
    /// histogram pairs with (see [`crate::observe_span`]); sessions use
    /// the pairing to reconcile span sums against histogram sums.
    pub const fn new(name: &'static str, help: &'static str, span_name: &'static str) -> Self {
        Self {
            name,
            help,
            span_name,
            shards: [const {
                Pad(HistShard {
                    buckets: [const { AtomicU64::new(0) }; BUCKETS],
                    sum_ns: AtomicU64::new(0),
                })
            }; SHARDS],
        }
    }

    /// The bucket index holding duration `ns`: `floor(log2(max(ns,1)))`,
    /// clamped to the last bucket.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        ((63 - (ns | 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Exclusive upper edge of bucket `i` in nanoseconds (`u64::MAX` for
    /// the final unbounded bucket).
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Record one observation of `ns` nanoseconds; no-op while the gate
    /// is off.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        if !enabled() {
            return;
        }
        let sh = &self.shards[shard()].0;
        sh.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        sh.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observation count across all shards.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.0.buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Exact sum of all observed nanoseconds across all shards.
    pub fn sum_ns(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.sum_ns.load(Ordering::Relaxed))
            .sum()
    }

    /// Aggregated per-bucket counts.
    pub fn buckets_total(&self) -> [u64; BUCKETS] {
        let mut agg = [0u64; BUCKETS];
        for s in &self.shards {
            for (a, b) in agg.iter_mut().zip(s.0.buckets.iter()) {
                *a += b.load(Ordering::Relaxed);
            }
        }
        agg
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, as the upper edge
    /// of the bucket containing that rank; `0` when empty. Bucket edges
    /// are powers of two, so the answer overstates by at most 2x — the
    /// right trade for a lock-free fixed-footprint registry.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let agg = self.buckets_total();
        let total: u64 = agg.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in agg.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper_ns(i);
            }
        }
        u64::MAX
    }

    /// Exposition name (`ozaki_*_seconds`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help line for `# HELP`.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// The paired span event name (see [`Histogram::new`]).
    pub fn span_name(&self) -> &'static str {
        self.span_name
    }
}

// ---------------------------------------------------------------------------
// TimeShare
// ---------------------------------------------------------------------------

/// Wall-clock share attribution for a fused loop: accumulates "part" vs
/// "total" CPU nanoseconds over parallel jobs so a caller can split its
/// single wall-clock measurement proportionally — exact on one worker, a
/// faithful CPU-share attribution on many.
///
/// **Not gated**: this replaces the core pipeline's hand-rolled
/// `ConvertTiming` and feeds the phase rows every bench report exposes,
/// which must stay populated with observability off.
#[derive(Default)]
pub struct TimeShare {
    part_ns: AtomicU64,
    total_ns: AtomicU64,
}

impl TimeShare {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one job's contribution.
    #[inline]
    pub fn add(&self, part_ns: u64, total_ns: u64) {
        self.part_ns.fetch_add(part_ns, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
    }

    /// Summed "part" nanoseconds.
    pub fn part_ns(&self) -> u64 {
        self.part_ns.load(Ordering::Relaxed)
    }

    /// Summed job-total nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// `part / total` (0 when nothing has been recorded).
    pub fn fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.part_ns() as f64 / total as f64
    }
}
