//! Property-based tests for the software low-precision formats.

use gemm_lowfp::{LowFloat, Tf32, BF16, F16};
use proptest::prelude::*;

/// Brute-force nearest-even oracle: among all f16 values, find the closest
/// to `x` (ties by even mantissa). Slow but obviously correct.
fn f16_nearest_oracle(x: f32) -> u16 {
    let mut best_bits = 0u16;
    let mut best_dist = f64::INFINITY;
    for bits in 0..=0xffffu16 {
        let h = F16(bits);
        if h.is_nan() {
            continue;
        }
        let v = h.to_f32() as f64;
        let d = (v - x as f64).abs();
        if d < best_dist || (d == best_dist && (bits & 1) == 0 && (best_bits & 1) == 1) {
            best_dist = d;
            best_bits = bits;
        }
    }
    best_bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    // |x| < 65520: beyond that IEEE RNE overflows to infinity (covered by
    // the `overflow_rounds_to_infinity` unit test); the brute-force oracle
    // below only ranks finite candidates.
    fn f16_conversion_is_correctly_rounded(x in -65519f32..65519f32) {
        let got = F16::from_f32(x);
        let want = f16_nearest_oracle(x);
        // Compare by value (0x8000 vs 0x0000 are both zero).
        prop_assert_eq!(got.to_f32(), F16(want).to_f32(), "x={}", x);
    }

    #[test]
    fn f16_round_trip_error_half_ulp(x in -60000f32..60000f32) {
        let r = F16::from_f32(x).to_f32();
        // Max relative error for normal range = 2^-11; absolute floor at
        // the subnormal ulp 2^-24.
        let bound = (x.abs() * 2f32.powi(-11)).max(2f32.powi(-25));
        prop_assert!((r - x).abs() <= bound, "x={x} r={r}");
    }

    #[test]
    fn bf16_error_bound(x in -1e30f32..1e30f32) {
        let r = BF16::from_f32(x).to_f32();
        prop_assert!((r - x).abs() <= x.abs() * 2f32.powi(-8) + f32::MIN_POSITIVE);
    }

    #[test]
    fn tf32_error_bound(x in -1e30f32..1e30f32) {
        let r = Tf32::from_f32(x).to_f32();
        prop_assert!((r - x).abs() <= x.abs() * 2f32.powi(-11) + f32::MIN_POSITIVE);
    }

    #[test]
    fn conversions_are_monotone(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
        prop_assert!(BF16::from_f32(lo).to_f32() <= BF16::from_f32(hi).to_f32());
        prop_assert!(Tf32::from_f32(lo).to_f32() <= Tf32::from_f32(hi).to_f32());
    }

    #[test]
    fn conversions_preserve_sign_symmetry(x in 0f32..60000f32) {
        prop_assert_eq!(F16::from_f32(-x).to_f32(), -F16::from_f32(x).to_f32());
        prop_assert_eq!(BF16::from_f32(-x).to_f32(), -BF16::from_f32(x).to_f32());
        prop_assert_eq!(Tf32::from_f32(-x).to_f32(), -Tf32::from_f32(x).to_f32());
    }

    #[test]
    fn idempotent_quantisation(x in -1e30f32..1e30f32) {
        let f = F16::from_f32(x);
        prop_assert_eq!(F16::from_f32(f.to_f32()).to_f32(), f.to_f32());
        let b = BF16::from_f32(x);
        prop_assert_eq!(BF16::from_f32(b.to_f32()), b);
        let t = Tf32::from_f32(x);
        prop_assert_eq!(Tf32::from_f32(t.to_f32()), t);
    }

    #[test]
    fn lowfloat_trait_consistency(x in -60000f32..60000f32) {
        prop_assert_eq!(<F16 as LowFloat>::from_f32(x).to_f32(), F16::from_f32(x).to_f32());
        prop_assert_eq!(<BF16 as LowFloat>::from_f32(x).to_f32(), BF16::from_f32(x).to_f32());
        prop_assert_eq!(<Tf32 as LowFloat>::from_f32(x).to_f32(), Tf32::from_f32(x).to_f32());
    }
}
