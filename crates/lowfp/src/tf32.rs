//! NVIDIA TF32 ("TensorFloat-32") implemented in software.
//!
//! TF32 keeps the f32 exponent range (8 bits) but only 10 explicit mantissa
//! bits (11-bit significand). We represent a TF32 value as an `f32` whose 13
//! low mantissa bits are zero; conversion rounds to nearest-even exactly as
//! the Tensor Core input-conversion stage does.

/// Software TF32 value, stored as an `f32` with the low 13 mantissa bits
/// clear.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Tf32(f32);

impl Tf32 {
    /// Number of significand bits including the implicit bit.
    pub const SIG_BITS: u32 = 11;

    /// Convert from `f32` with round-to-nearest-even at 10 mantissa bits.
    pub fn from_f32(x: f32) -> Self {
        let b = x.to_bits();
        if (b & 0x7f80_0000) == 0x7f80_0000 {
            // Inf / NaN pass through unchanged.
            return Tf32(x);
        }
        let lsb = (b >> 13) & 1;
        let rounded = b.wrapping_add(0x0fff + lsb) & !0x1fff;
        Tf32(f32::from_bits(rounded))
    }

    /// The exactly-representable `f32` value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0
    }

    /// Raw bit pattern of the underlying f32.
    pub fn to_bits(self) -> u32 {
        self.0.to_bits()
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }
}

impl std::fmt::Display for Tf32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(x: f32) -> f32 {
        Tf32::from_f32(x).to_f32()
    }

    #[test]
    fn low_13_bits_are_cleared() {
        for &x in &[1.0f32, std::f32::consts::PI, 1e-30, 1e30, -7.25] {
            let t = Tf32::from_f32(x);
            assert_eq!(t.to_bits() & 0x1fff, 0, "x={x}");
        }
    }

    #[test]
    fn integers_up_to_11_bits_exact() {
        for i in -2048..=2048 {
            assert_eq!(round_trip(i as f32), i as f32);
        }
    }

    #[test]
    fn relative_error_bounded_by_half_ulp() {
        let mut x = 1.000001f32;
        for _ in 0..1000 {
            let t = round_trip(x);
            assert!(((t - x) / x).abs() <= 2.0_f32.powi(-11), "x={x} t={t}");
            x *= 1.618;
            if !x.is_finite() {
                break;
            }
        }
    }

    #[test]
    fn tie_to_even() {
        // 1 + 2^-11 is the midpoint between 1.0 and 1 + 2^-10.
        assert_eq!(round_trip(1.0 + 2.0_f32.powi(-11)), 1.0);
        assert_eq!(
            round_trip(1.0 + 3.0 * 2.0_f32.powi(-11)),
            1.0 + 2.0_f32.powi(-9)
        );
    }

    #[test]
    fn exponent_range_is_f32() {
        assert_eq!(round_trip(f32::MIN_POSITIVE), f32::MIN_POSITIVE);
        // Near f32::MAX the carry rounds to infinity, like the hardware.
        assert_eq!(round_trip(f32::MAX), f32::INFINITY);
    }

    #[test]
    fn nan_and_inf_pass_through() {
        assert!(Tf32::from_f32(f32::NAN).is_nan());
        assert_eq!(round_trip(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn idempotent() {
        for &x in &[0.1f32, 123.456, -9.87e-20] {
            let once = Tf32::from_f32(x);
            let twice = Tf32::from_f32(once.to_f32());
            assert_eq!(once, twice);
        }
    }
}
