//! bfloat16 implemented in software.
//!
//! Layout: 1 sign bit, 8 exponent bits (same range as f32), 8 mantissa bits
//! (7 stored). Conversion from `f32` is round-to-nearest-even on the top 16
//! bits, matching CUDA `__float2bfloat16_rn`.

/// Software bfloat16 value (bit-pattern newtype).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BF16(pub u16);

impl BF16 {
    /// Positive infinity.
    pub const INFINITY: BF16 = BF16(0x7f80);
    /// Largest finite value.
    pub const MAX: BF16 = BF16(0x7f7f);
    /// Number of significand bits including the implicit bit.
    pub const SIG_BITS: u32 = 8;

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let b = x.to_bits();
        if (b & 0x7f80_0000) == 0x7f80_0000 && (b & 0x007f_ffff) != 0 {
            // NaN: truncating could turn it into Inf, so force a quiet bit.
            return BF16(((b >> 16) as u16) | 0x0040);
        }
        let lsb = (b >> 16) & 1;
        // RNE; mantissa carry propagates into the exponent and, at the top of
        // the range, correctly produces infinity.
        let rounded = b.wrapping_add(0x7fff + lsb) >> 16;
        BF16(rounded as u16)
    }

    /// Convert to `f32` (always exact: left-shift by 16).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7f80) == 0x7f80 && (self.0 & 0x007f) != 0
    }

    /// True if the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7f80
    }
}

impl std::fmt::Display for BF16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(x: f32) -> f32 {
        BF16::from_f32(x).to_f32()
    }

    #[test]
    fn exact_small_integers() {
        for i in -256..=256 {
            let x = i as f32;
            assert_eq!(round_trip(x), x, "integer {i} must be exact in bf16");
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(BF16::from_f32(1.0).0, 0x3f80);
        assert_eq!(BF16::from_f32(-1.0).0, 0xbf80);
        assert_eq!(BF16::from_f32(2.0).0, 0x4000);
    }

    #[test]
    fn rne_tie_to_even() {
        // 1 + 2^-8 ties between 1.0 (even) and 1 + 2^-7.
        assert_eq!(round_trip(1.0 + 2.0_f32.powi(-8)), 1.0);
        // 1 + 3*2^-8 ties up to 1 + 2^-6... nearest even mantissa.
        assert_eq!(
            round_trip(1.0 + 3.0 * 2.0_f32.powi(-8)),
            1.0 + 2.0 * 2.0_f32.powi(-7)
        );
    }

    #[test]
    fn exponent_range_matches_f32() {
        // f32::MAX has an all-ones mantissa: RNE carries it up to infinity.
        assert_eq!(round_trip(f32::MAX), f32::INFINITY);
        // A large value stays within 2^-8 relative error.
        let x = 1e38f32;
        assert!(((round_trip(x) - x) / x).abs() <= 2.0_f32.powi(-8));
        // MIN_POSITIVE survives (bf16 has the same exponent range).
        assert_eq!(round_trip(f32::MIN_POSITIVE), f32::MIN_POSITIVE);
    }

    #[test]
    fn nan_preserved() {
        assert!(BF16::from_f32(f32::NAN).is_nan());
        let snan = f32::from_bits(0x7f80_0001);
        assert!(BF16::from_f32(snan).is_nan());
    }

    #[test]
    fn infinity_passthrough() {
        assert!(BF16::from_f32(f32::INFINITY).is_infinite());
        assert_eq!(BF16::from_f32(f32::NEG_INFINITY).0, 0xff80);
    }

    #[test]
    fn exhaustive_round_trip_all_finite_bf16() {
        for bits in 0..=0xffffu16 {
            let h = BF16(bits);
            if h.is_nan() {
                continue;
            }
            assert_eq!(BF16::from_f32(h.to_f32()).0, bits, "bits {bits:#06x}");
        }
    }
}
