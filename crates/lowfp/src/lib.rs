//! # gemm-lowfp
//!
//! Software implementations of the low-precision floating-point formats the
//! paper's baselines run on: IEEE binary16 ([`F16`]), bfloat16 ([`BF16`])
//! and NVIDIA TF32 ([`Tf32`]). Each conversion from `f32` performs
//! round-to-nearest-even exactly like the corresponding GPU conversion
//! instruction, so the baseline emulations (cuMpSGEMM, BF16x9, TF32GEMM)
//! reproduce the hardware's rounding behaviour bit for bit.

#![warn(missing_docs)]

pub mod bf16;
pub mod f16;
pub mod tf32;

pub use bf16::BF16;
pub use f16::F16;
pub use tf32::Tf32;

/// Common interface for the software low-precision formats, used by the
/// generic tensor-core engine in `gemm-engine`.
pub trait LowFloat: Copy + Send + Sync + 'static {
    /// Significand width (including the implicit bit); determines which
    /// products are exact in f32.
    const SIG_BITS: u32;
    /// Human-readable format name.
    const NAME: &'static str;
    /// Round an `f32` into this format (round-to-nearest-even).
    fn from_f32(x: f32) -> Self;
    /// Widen back to `f32` (always exact for these formats).
    fn to_f32(self) -> f32;
}

impl LowFloat for F16 {
    const SIG_BITS: u32 = 11;
    const NAME: &'static str = "fp16";
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
}

impl LowFloat for BF16 {
    const SIG_BITS: u32 = 8;
    const NAME: &'static str = "bf16";
    fn from_f32(x: f32) -> Self {
        BF16::from_f32(x)
    }
    fn to_f32(self) -> f32 {
        BF16::to_f32(self)
    }
}

impl LowFloat for Tf32 {
    const SIG_BITS: u32 = 11;
    const NAME: &'static str = "tf32";
    fn from_f32(x: f32) -> Self {
        Tf32::from_f32(x)
    }
    fn to_f32(self) -> f32 {
        Tf32::to_f32(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_bound<T: LowFloat>() -> f32 {
        2.0_f32.powi(-(T::SIG_BITS as i32))
    }

    fn check_round_error<T: LowFloat>(values: &[f32]) {
        for &x in values {
            let r = T::from_f32(x).to_f32();
            let err = ((r - x) / x).abs();
            assert!(
                err <= ulp_bound::<T>(),
                "{}: x={x} r={r} err={err}",
                T::NAME
            );
        }
    }

    #[test]
    fn generic_rounding_error_bounds() {
        let values = [1.0f32, 1.5, 0.1, 3.1875, 100.7, 0.001234];
        check_round_error::<F16>(&values);
        check_round_error::<BF16>(&values);
        check_round_error::<Tf32>(&values);
    }

    #[test]
    fn names_and_sig_bits() {
        assert_eq!(F16::NAME, "fp16");
        assert_eq!(BF16::NAME, "bf16");
        assert_eq!(Tf32::NAME, "tf32");
        assert_eq!(<F16 as LowFloat>::SIG_BITS, 11);
        assert_eq!(<BF16 as LowFloat>::SIG_BITS, 8);
        assert_eq!(<Tf32 as LowFloat>::SIG_BITS, 11);
    }

    #[test]
    fn products_of_two_values_exact_in_f32() {
        // The tensor-core model multiplies in f32; an (SIG_BITS x SIG_BITS)
        // product has <= 22 significant bits, exact in f32's 24.
        let a = F16::from_f32(1.0009766); // 1 + 2^-10
        let b = F16::from_f32(1.9990234); // 2 - 2^-10
        let p = a.to_f32() * b.to_f32();
        let exact = a.to_f32() as f64 * b.to_f32() as f64;
        assert_eq!(p as f64, exact);
    }
}
