//! IEEE-754 binary16 implemented in software.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversion from `f32` uses round-to-nearest-even including the
//! subnormal range, matching the behaviour of CUDA `__float2half_rn`.

/// Software IEEE binary16 value (bit-pattern newtype).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct F16(pub u16);

const F16_EXP_MASK: u16 = 0x7c00;
const F16_MAN_MASK: u16 = 0x03ff;
const F16_SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Number of significand bits including the implicit bit.
    pub const SIG_BITS: u32 = 11;

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let b = x.to_bits();
        let sign = ((b >> 16) & (F16_SIGN_MASK as u32)) as u16;
        let exp = ((b >> 23) & 0xff) as i32;
        let man = b & 0x007f_ffff;

        if exp == 0xff {
            // Inf or NaN. Preserve NaN-ness with a quiet bit.
            return if man == 0 {
                F16(sign | F16_EXP_MASK)
            } else {
                F16(sign | F16_EXP_MASK | 0x0200 | ((man >> 13) as u16 & F16_MAN_MASK))
            };
        }
        if exp == 0 {
            // f32 subnormals are < 2^-126, far below half of the smallest
            // f16 subnormal (2^-25): they all round to (signed) zero.
            return F16(sign);
        }

        let e16 = exp - 127 + 15;
        let sig = 0x0080_0000u32 | man; // 24-bit significand

        if e16 >= 31 {
            // Overflows even before rounding.
            return F16(sign | F16_EXP_MASK);
        }
        if e16 <= 0 {
            // Subnormal (or zero) result: shift the significand so that ulp
            // = 2^-24 and round. A round-up into 0x0400 lands exactly on the
            // smallest normal bit pattern, which is the correct result.
            if e16 < -10 {
                return F16(sign);
            }
            let shift = (14 - e16) as u32; // in [14, 24]
            let lsb = (sig >> shift) & 1;
            let half = (1u32 << (shift - 1)) - 1;
            let rounded = (sig + half + lsb) >> shift;
            return F16(sign | rounded as u16);
        }

        // Normal range: drop 13 mantissa bits with RNE; carry may bump the
        // exponent (possibly to infinity, which is the correct rounding).
        let lsb = (sig >> 13) & 1;
        let rounded = (sig + 0x0fff + lsb) >> 13; // in [0x400, 0x800]
        let (rounded, e16) = if rounded == 0x800 {
            (0x400u32, e16 + 1)
        } else {
            (rounded, e16)
        };
        if e16 >= 31 {
            return F16(sign | F16_EXP_MASK);
        }
        F16(sign | ((e16 as u16) << 10) | (rounded as u16 & F16_MAN_MASK))
    }

    /// Convert to `f32` (always exact).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & F16_SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & F16_EXP_MASK) >> 10) as u32;
        let man = (self.0 & F16_MAN_MASK) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, _) => {
                // Subnormal: value = man * 2^-24 with man in [1, 0x3ff];
                // normalise into f32's exponent range.
                let t = 31 - man.leading_zeros(); // MSB position, 0..=9
                let exp32 = 127 - 24 + t;
                let man32 = (man << (23 - t)) & 0x007f_ffff;
                sign | (exp32 << 23) | man32
            }
            (0x1f, 0) => sign | 0x7f80_0000,
            (0x1f, _) => sign | 0x7fc0_0000 | (man << 13),
            _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
        };
        f32::from_bits(bits)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & F16_EXP_MASK) == F16_EXP_MASK && (self.0 & F16_MAN_MASK) != 0
    }

    /// True if the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & !F16_SIGN_MASK) == F16_EXP_MASK
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(x: f32) -> f32 {
        F16::from_f32(x).to_f32()
    }

    #[test]
    fn exact_small_integers() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(round_trip(x), x, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-2.0).0, 0xc000);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0_f32.powi(-24));
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is the midpoint between 65504 and 65536: ties-to-even → inf.
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(F16::from_f32(65519.0).0, F16::MAX.0);
        assert!(F16::from_f32(1e10).is_infinite());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
    }

    #[test]
    fn underflow_and_subnormals() {
        let min_sub = 2.0_f32.powi(-24);
        assert_eq!(round_trip(min_sub), min_sub);
        // Half the smallest subnormal ties to even (zero).
        assert_eq!(round_trip(min_sub / 2.0), 0.0);
        // Slightly above half rounds up to the smallest subnormal.
        assert_eq!(round_trip(min_sub * 0.75), min_sub);
        // 1.5 * min_sub ties: rounds to even mantissa (2 * min_sub).
        assert_eq!(round_trip(min_sub * 1.5), 2.0 * min_sub);
        // f32 subnormals collapse to zero.
        assert_eq!(round_trip(f32::MIN_POSITIVE / 2.0), 0.0);
    }

    #[test]
    fn rne_ties() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10 → even → 1.0
        let tie = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_trip(tie), 1.0);
        // 1 + 3*2^-11 ties up to 1 + 2*2^-10... even mantissa
        let tie2 = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(round_trip(tie2), 1.0 + 2.0 * 2.0_f32.powi(-10));
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn signed_zero() {
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
    }

    #[test]
    fn exhaustive_round_trip_all_finite_f16() {
        // Every finite f16 bit pattern must survive f16 -> f32 -> f16.
        for bits in 0..=0xffffu16 {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }
}
