//! Integration tests for the application layer: HPL-style LU and
//! McWeeny purification driven by emulated GEMM.

use gemmul8::apps::lu::{hpl_residual, lu_factor, lu_solve};
use gemmul8::apps::purify::{known_spectrum_matrix, mcweeny, trace};
use gemmul8::prelude::*;

#[test]
fn hpl_with_emulated_dgemm_passes_at_n14() {
    // §5.1: "HPL can employ emulation with 14 or 15 moduli."
    let (a, b) = gemm_dense::workload::hpl_like_system(160, 51);
    for method in [
        &Ozaki2::new(14, Mode::Fast) as &dyn MatMulF64,
        &Ozaki2::new(15, Mode::Fast),
        &Ozaki2::new(15, Mode::Accurate),
    ] {
        let f = lu_factor(&a, 40, method);
        let x = lu_solve(&f, &b);
        let res = hpl_residual(&a, &x, &b);
        assert!(
            res < 16.0,
            "{}: HPL residual {res} exceeds the acceptance bound",
            method.name()
        );
    }
}

#[test]
fn hpl_with_too_few_moduli_fails_or_degrades() {
    let (a, b) = gemm_dense::workload::hpl_like_system(160, 52);
    let native_res = {
        let f = lu_factor(&a, 40, &NativeDgemm);
        hpl_residual(&a, &lu_solve(&f, &b), &b)
    };
    let low_res = {
        let f = lu_factor(&a, 40, &Ozaki2::new(6, Mode::Fast));
        hpl_residual(&a, &lu_solve(&f, &b), &b)
    };
    assert!(
        low_res > 100.0 * native_res,
        "N=6 residual {low_res} should be far above native {native_res}"
    );
}

#[test]
fn purification_with_emulated_gemm_matches_native() {
    let n = 64;
    let p0 = known_spectrum_matrix(n, 0.1, 0.9, 13);
    let native = mcweeny(&p0, &NativeDgemm, 1e-9, 50);
    let emulated = mcweeny(&p0, &Ozaki2::new(15, Mode::Fast), 1e-9, 50);
    assert!(native.iterations < 50 && emulated.iterations < 50);
    assert_eq!(
        native.iterations, emulated.iterations,
        "same convergence path expected at N=15"
    );
    assert!((trace(&emulated.p) - (n / 2) as f64).abs() < 1e-6);
}

#[test]
fn purification_self_corrects_reduced_precision() {
    // The point of reference [2]: iterative refinement-style algorithms
    // tolerate reduced-precision GEMM. N=8 (roughly single precision)
    // still converges to the right density matrix.
    let n = 48;
    let p0 = known_spectrum_matrix(n, 0.2, 0.8, 29);
    let r = mcweeny(&p0, &Ozaki2::new(8, Mode::Fast), 1e-7, 60);
    assert!(r.iterations < 60, "reduced precision still converges");
    assert!((trace(&r.p) - (n / 2) as f64).abs() < 1e-4);
}

#[test]
fn lu_rejects_singular() {
    let a = MatF64::zeros(8, 8);
    let result = std::panic::catch_unwind(|| lu_factor(&a, 4, &NativeDgemm));
    assert!(result.is_err(), "singular matrix must be rejected");
}
