//! Integration tests reproducing the paper's §5.1 accuracy claims at
//! reduced (CI-friendly) sizes. The `N`-thresholds shift with `log2 k`,
//! so claims are tested in scale-adjusted form where needed.

use gemmul8::prelude::*;

fn dgemm_err(
    nmod: usize,
    mode: Mode,
    a: &MatF64,
    b: &MatF64,
    exact: &gemm_dense::Matrix<Dd>,
) -> f64 {
    max_rel_error_vs_dd(&Ozaki2::new(nmod, mode).dgemm(a, b), exact)
}

#[test]
fn claim_fast_14_slightly_below_dgemm_fast_15_on_par() {
    // §5.1 (phi = 0.5): OS II-fast-14 slightly lower accuracy than DGEMM;
    // OS II-fast-15 on par or better. k here is 512 (vs the paper's 1024),
    // which shifts the truncation budget by half a bit — the ordering is
    // unchanged.
    let (m, n, k) = (128, 128, 512);
    let a = phi_matrix_f64(m, k, 0.5, 1001, 0);
    let b = phi_matrix_f64(k, n, 0.5, 1001, 1);
    let exact = dd_gemm(&a, &b);
    let native = max_rel_error_vs_dd(&NativeDgemm.matmul_f64(&a, &b), &exact);
    let fast14 = dgemm_err(14, Mode::Fast, &a, &b, &exact);
    let fast15 = dgemm_err(15, Mode::Fast, &a, &b, &exact);
    assert!(
        fast14 > native / 4.0,
        "fast-14 ({fast14:e}) should not beat DGEMM ({native:e}) decisively"
    );
    assert!(
        fast15 <= native * 4.0,
        "fast-15 ({fast15:e}) should be at DGEMM level ({native:e})"
    );
    assert!(fast15 < fast14, "more moduli must not hurt");
}

#[test]
fn claim_error_shrinks_about_4_bits_per_modulus() {
    // Each modulus adds ~7.9 bits to log2 P, but the budget is split
    // between the two operands, so the *product* error shrinks ~4 bits per
    // modulus — matching Fig. 3's span (SGEMM level at N≈8 to DGEMM level
    // at N≈15: 29 bits over 7 moduli).
    let (m, n, k) = (96, 96, 256);
    let a = phi_matrix_f64(m, k, 0.5, 7, 0);
    let b = phi_matrix_f64(k, n, 0.5, 7, 1);
    let exact = dd_gemm(&a, &b);
    let e8 = dgemm_err(8, Mode::Fast, &a, &b, &exact);
    let e12 = dgemm_err(12, Mode::Fast, &a, &b, &exact);
    let bits_gained = (e8 / e12).log2() / 4.0;
    assert!(
        (2.5..6.0).contains(&bits_gained),
        "expected ~4 bits per modulus, got {bits_gained}"
    );
}

#[test]
fn claim_fast_mode_degrades_with_phi_accurate_holds() {
    // §5.1: "the limiting accuracy of OS II-fast-N got worse as phi
    // increased … accurate mode achieves sufficient accuracy with N <= 17
    // even for phi = 4".
    let (m, n, k) = (96, 96, 256);
    let nmod = 14;
    // Same seed for every phi: the underlying draws are identical, only
    // the exponent spread changes — the cleanest comparison.
    let mut fast_errs = Vec::new();
    let mut accu_errs = Vec::new();
    for phi in [0.5f64, 2.0, 4.0] {
        let a = phi_matrix_f64(m, k, phi, 300, 0);
        let b = phi_matrix_f64(k, n, phi, 300, 1);
        let exact = dd_gemm(&a, &b);
        fast_errs.push(dgemm_err(nmod, Mode::Fast, &a, &b, &exact));
        accu_errs.push(dgemm_err(nmod, Mode::Accurate, &a, &b, &exact));
    }
    assert!(
        fast_errs[2] > fast_errs[0] * 10.0,
        "fast mode must degrade from phi=0.5 ({:e}) to phi=4 ({:e})",
        fast_errs[0],
        fast_errs[2]
    );
    assert!(
        accu_errs[2] <= fast_errs[2] * 1.2,
        "accurate mode must be at least as good at phi=4: {:e} vs {:e}",
        accu_errs[2],
        fast_errs[2]
    );
}

#[test]
fn claim_sgemm_level_at_n_7_to_8() {
    // §5.1: "OS II-fast-N with N in {7,8} returned results with
    // SGEMM-level accuracy" for phi <= 1.
    let (m, n, k) = (128, 128, 256);
    let a = phi_matrix_f32(m, k, 0.5, 55, 0);
    let b = phi_matrix_f32(k, n, 0.5, 55, 1);
    let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
    let err = |c: &MatF32| max_rel_error_vs_dd(&c.map(|x| x as f64), &exact);
    let native = err(&NativeSgemm.matmul_f32(&a, &b));
    let e8 = err(&Ozaki2::new(8, Mode::Fast).sgemm(&a, &b));
    assert!(
        e8 <= native * 8.0,
        "fast-8 ({e8:e}) should be at SGEMM level ({native:e})"
    );
}

#[test]
fn claim_small_n_is_tf32_level() {
    // §5.1: "OS II-fast-N with N in {4,...,7} achieved TF32-level
    // accuracy" — between TF32 and SGEMM.
    let (m, n, k) = (96, 96, 256);
    let a = phi_matrix_f32(m, k, 0.5, 66, 0);
    let b = phi_matrix_f32(k, n, 0.5, 66, 1);
    let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
    let err = |c: &MatF32| max_rel_error_vs_dd(&c.map(|x| x as f64), &exact);
    let tf32 = err(&Tf32Gemm.matmul_f32(&a, &b));
    let sgemm = err(&NativeSgemm.matmul_f32(&a, &b));
    let e5 = err(&Ozaki2::new(5, Mode::Fast).sgemm(&a, &b));
    assert!(
        e5 < tf32 * 2.0,
        "fast-5 ({e5:e}) should be at least TF32 level ({tf32:e})"
    );
    assert!(e5 > sgemm / 100.0, "but not at full SGEMM level yet");
}

#[test]
fn claim_fast_small_n_wide_phi_collapses() {
    // §5.1: "For phi in {0.5, 1, 1.5}, OS II-fast-2 yields A' = O and
    // B' = O due to overestimation in (7)". In the authors' formula the
    // Cauchy–Schwarz bound with N = 2's tiny P truncates *everything*
    // away; our per-row-normalised variant of the same bound keeps a few
    // sign bits, but the result is equally unusable (relative error far
    // above 1) and recovers as N grows — the same cliff as in Fig. 3.
    let (m, n, k) = (64, 64, 1024);
    let a = phi_matrix_f32(m, k, 1.5, 77, 0);
    let b = phi_matrix_f32(k, n, 1.5, 77, 1);
    let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
    let err = |nmod: usize| {
        let c = Ozaki2::new(nmod, Mode::Fast).sgemm(&a, &b);
        max_rel_error_vs_dd(&c.map(|x| x as f64), &exact)
    };
    let e2 = err(2);
    let e3 = err(3);
    let e5 = err(5);
    assert!(e2 > 10.0, "fast-2 must be unusable at phi=1.5: {e2:e}");
    assert!(
        e3 < e2 && e5 < e3,
        "and recover with N: {e2:e} > {e3:e} > {e5:e}"
    );
    assert!(e5 < 1.0, "fast-5 should carry real signal: {e5:e}");
}

#[test]
fn claim_bf16x9_equivalent_to_sgemm() {
    // §5.1: "SGEMM and BF16x9 exhibited equivalent accuracy".
    let (m, n, k) = (96, 96, 192);
    let a = phi_matrix_f32(m, k, 0.5, 88, 0);
    let b = phi_matrix_f32(k, n, 0.5, 88, 1);
    let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
    let err = |c: &MatF32| max_rel_error_vs_dd(&c.map(|x| x as f64), &exact);
    let sgemm = err(&NativeSgemm.matmul_f32(&a, &b));
    let bf = err(&Bf16x9.matmul_f32(&a, &b));
    let ratio = (bf / sgemm).max(sgemm / bf);
    assert!(
        ratio < 32.0,
        "SGEMM {sgemm:e} vs BF16x9 {bf:e}: same order expected"
    );
}

#[test]
fn claim_k_growth_costs_half_bit_per_doubling() {
    // Condition (3) spends log2(k) bits of P on the dot-product length:
    // going from k to 4k costs ~1 bit of accuracy per operand (2 total).
    let (m, n) = (64, 64);
    let a1 = phi_matrix_f64(m, 256, 0.5, 12, 0);
    let b1 = phi_matrix_f64(256, n, 0.5, 12, 1);
    let a2 = phi_matrix_f64(m, 4096, 0.5, 12, 2);
    let b2 = phi_matrix_f64(4096, n, 0.5, 12, 3);
    let e1 = max_rel_error_vs_dd(
        &Ozaki2::new(10, Mode::Fast).dgemm(&a1, &b1),
        &dd_gemm(&a1, &b1),
    );
    let e2 = max_rel_error_vs_dd(
        &Ozaki2::new(10, Mode::Fast).dgemm(&a2, &b2),
        &dd_gemm(&a2, &b2),
    );
    assert!(
        e2 > e1,
        "larger k must cost accuracy: k=256 -> {e1:e}, k=4096 -> {e2:e}"
    );
    assert!(e2 < e1 * 1e4, "but only a few bits");
}

/// Cross-backend equivalence at matching accuracy targets: resolving the
/// same normwise target on each backend's own pool (more planes on the
/// fma-bf16 pool, which carries fewer bits each) must land both within
/// the target against a double-double oracle — backend choice trades
/// throughput, not the accuracy contract.
#[test]
fn claim_backends_equivalent_at_matching_accuracy_targets() {
    use ozaki2::choose_n_for;
    let (m, n, k) = (96, 96, 256);
    let a = phi_matrix_f64(m, k, 0.5, 77, 0);
    let b = phi_matrix_f64(k, n, 0.5, 77, 1);
    let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
    for target_bits in [12i32, 20] {
        let target = 2f64.powi(-target_bits);
        let n_int8 = choose_n_for(BackendKind::Int8, target, k, false).expect("int8 reaches");
        let n_fma = choose_n_for(BackendKind::FmaBf16, target, k, false).expect("fma reaches");
        assert!(
            n_fma > n_int8,
            "fma pool needs more planes: {n_fma} vs {n_int8} at 2^-{target_bits}"
        );
        let err_int8 =
            normwise_relative_error(&Ozaki2::new(n_int8, Mode::Fast).dgemm(&a, &b), &exact);
        let err_fma = normwise_relative_error(
            &Ozaki2::new(n_fma, Mode::Fast)
                .with_backend(BackendKind::FmaBf16)
                .dgemm(&a, &b),
            &exact,
        );
        for (name, err) in [("int8", err_int8), ("fma-bf16", err_fma)] {
            assert!(
                err <= target * 16.0,
                "{name} at 2^-{target_bits}: measured {err:e} vs target {target:e}"
            );
        }
    }
}

/// The fast-inference accuracy point: very few planes, loose bound, and
/// the report carries the predicted error the builder promised.
#[test]
fn claim_fast_inference_mode_trades_accuracy_for_planes() {
    let (m, n, k) = (64, 64, 1024);
    let emu = Ozaki2::builder()
        .accuracy(Accuracy::FastInference)
        .k(k)
        .build()
        .expect("fast-inference target is always reachable");
    assert!(
        emu.n_moduli() <= 7,
        "fast inference should need few planes, got {}",
        emu.n_moduli()
    );
    let a = phi_matrix_f64(m, k, 0.5, 33, 0);
    let b = phi_matrix_f64(k, n, 0.5, 33, 1);
    let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
    let mut report = None;
    let out = emu
        .gemm(GemmArgs::new(&a, &b).report(&mut report))
        .expect("runs");
    let report = report.expect("report collected");
    assert!(report.predicted_error > 0.0);
    assert!(
        report.predicted_error <= 2f64.powi(-10) * 2.0,
        "predicted {:e} should honour the 2^-10 target",
        report.predicted_error
    );
    let measured = normwise_relative_error(&out.c, &exact);
    assert!(
        measured <= report.predicted_error * 32.0,
        "measured {measured:e} vs predicted {:e}",
        report.predicted_error
    );
}
