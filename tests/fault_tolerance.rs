//! Fault-injection integration tests for the ABFT execution layer.
//!
//! Every test arms deterministic single-bit faults via
//! [`gemm_engine::faultinject`] and drives the full `ozaki2` stack
//! through them, pinning the two contracts the fault-tolerant executor
//! claims:
//!
//! 1. **Detection** (`FaultPolicy::Detect` and up): whenever an injected
//!    flip changes the output relative to a fault-free run, the report
//!    records a detection — the checksum arithmetic is exact mod `p`, so
//!    there is no tolerance window for a flip to hide in.
//! 2. **Recovery** (`FaultPolicy::Retry` / `RetryThenScalar`): the final
//!    product is **bit-identical** to the fault-free result, across
//!    modes, element types, shapes, and every injection site.
//!
//! The injector's armed state is process-global, so *all* tests in this
//! file serialize on one mutex (and this is the only test binary that
//! arms faults). The suite also stays correct when CI layers the
//! environment mechanisms on top (`OZAKI_FAULT_INJECT` +
//! `OZAKI_FAULT_POLICY=retry-then-scalar`): references are computed
//! under an explicit `FaultPolicy::Off`, which opens no protected
//! region and therefore sees no environment-rate faults.

use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
use gemm_engine::faultinject::{self, FaultSite};
use ozaki2::{FaultPolicy, GemmArgs, Mode, Ozaki2};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static INJECTOR: Mutex<()> = Mutex::new(());

/// Serialize access to the process-global injector (recovering the lock
/// from a previous test's panic — the injector state is still valid).
fn injector_lock() -> MutexGuard<'static, ()> {
    let guard = INJECTOR.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    guard
}

const SITES: [FaultSite; 4] = [
    FaultSite::PanelA,
    FaultSite::PanelB,
    FaultSite::Acc,
    FaultSite::Residue,
];

/// Flips at any site are detected whenever they matter: if the output
/// differs from the fault-free product, the report must say so. Residue
/// flips always land in live plane data, so for that site detection is
/// asserted unconditionally.
#[test]
fn single_faults_are_always_detected() {
    let _g = injector_lock();
    for &(m, n, k) in &[(16usize, 16usize, 32usize), (7, 9, 21), (33, 5, 40)] {
        let a = phi_matrix_f64(m, k, 0.5, 3, 0);
        let b = phi_matrix_f64(k, n, 0.5, 3, 1);
        for mode in [Mode::Fast, Mode::Accurate] {
            let reference = Ozaki2::new(8, mode)
                .with_fault_policy(FaultPolicy::Off)
                .gemm(GemmArgs::new(&a, &b))
                .unwrap()
                .c;
            let emu = Ozaki2::new(8, mode).with_fault_policy(FaultPolicy::Detect);
            for site in SITES {
                faultinject::arm_once(site);
                let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
                faultinject::disarm();
                let rep = out.report.fault.expect("active policy must report");
                if out.c != reference {
                    assert!(
                        rep.detected >= 1,
                        "undetected corruption: {site:?} {mode:?} {m}x{n}x{k}"
                    );
                    assert!(!rep.events.is_empty(), "detections must leave events");
                }
                if site == FaultSite::Residue {
                    assert!(
                        rep.detected >= 1,
                        "residue flips always hit live data: {mode:?} {m}x{n}x{k}"
                    );
                }
            }
        }
    }
}

/// Negative control: under `FaultPolicy::Off` nothing verifies — an
/// armed accumulator flip (which bypasses the protected region) lands
/// in live data and silently corrupts the product, and no fault report
/// is attached. This pins both that `Off` really is the pre-ABFT
/// pipeline and that the injected faults are material.
#[test]
fn policy_off_is_silently_corrupted() {
    let _g = injector_lock();
    // Dimensions multiples of the 4x4 tile: every accumulator element
    // is live, so the flip cannot hide in tile padding.
    let (m, n, k) = (16usize, 16usize, 32usize);
    let a = phi_matrix_f64(m, k, 0.5, 11, 0);
    let b = phi_matrix_f64(k, n, 0.5, 11, 1);
    let emu = Ozaki2::new(8, Mode::Fast).with_fault_policy(FaultPolicy::Off);
    let reference = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
    assert!(reference.report.fault.is_none(), "Off must not report");

    faultinject::arm_once(FaultSite::Acc);
    let corrupted = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
    faultinject::disarm();
    assert!(corrupted.report.fault.is_none());
    assert_ne!(
        corrupted.c, reference.c,
        "a live accumulator flip must corrupt the unprotected pipeline"
    );
}

/// A clean (fault-free) run under an active policy is bit-identical to
/// the `Off` path, costs the same number of *main* INT8 GEMMs (checksum
/// products are accounted separately), and reports a clean
/// `FaultReport` with the expected checksum-GEMM count.
#[test]
fn clean_runs_report_clean_and_match_off_bitwise() {
    let _g = injector_lock();
    let (m, n, k) = (24usize, 18, 40);
    let a = phi_matrix_f64(m, k, 0.6, 5, 0);
    let b = phi_matrix_f64(k, n, 0.6, 5, 1);
    for nmod in [4usize, 10] {
        for mode in [Mode::Fast, Mode::Accurate] {
            let off = Ozaki2::new(nmod, mode)
                .with_fault_policy(FaultPolicy::Off)
                .gemm(GemmArgs::new(&a, &b))
                .unwrap();
            let det = Ozaki2::new(nmod, mode)
                .with_fault_policy(FaultPolicy::Detect)
                .gemm(GemmArgs::new(&a, &b))
                .unwrap();
            assert_eq!(
                det.report.int8_gemm_calls, off.report.int8_gemm_calls,
                "checksum GEMMs must not inflate the main call count"
            );
            let rep = det.report.fault.expect("active policy must report");
            // Two checksum products per residue plane (k fits one block).
            assert_eq!(rep.checksum_gemms, 2 * nmod);
            if !faultinject::enabled() {
                assert_eq!(det.c, off.c, "N={nmod} {mode:?}");
                assert!(rep.clean(), "no faults were armed: {rep:?}");
            } else if det.c != off.c {
                // An env-rate fault fired inside the protected region;
                // Detect records rather than repairs, so the output may
                // differ — but then the detection contract must hold.
                assert!(rep.detected > 0, "corrupt output went undetected: {rep:?}");
            }
        }
    }
}

/// Prepared (`Fixed`) operands are the trusted repack source: the panel
/// seams are deliberately absent there, so an armed panel fault stays
/// pending, and accumulator faults still recover bit-identically via
/// repair from the prepared panels.
#[test]
fn prepared_operands_have_no_panel_seam_and_recover() {
    let _g = injector_lock();
    let (m, n, k) = (24usize, 12, 32);
    let a = phi_matrix_f64(m, k, 0.5, 7, 0);
    let b = phi_matrix_f64(k, n, 0.5, 7, 1);
    let emu = Ozaki2::new(8, Mode::Fast).with_fault_policy(FaultPolicy::Retry { max_retries: 2 });
    let reference = Ozaki2::new(8, Mode::Fast)
        .with_fault_policy(FaultPolicy::Off)
        .gemm(GemmArgs::new(&a, &b))
        .unwrap()
        .c;
    let pa = emu.prepare_a(&a);
    let pb = emu.prepare_b(&b);

    // No Repackable side in the execution: the armed panel fault has no
    // seam to fire at and must still be pending afterwards.
    faultinject::arm_once(FaultSite::PanelA);
    let got = emu.execute_prepared(&pa, &pb);
    assert!(
        faultinject::armed_pending(),
        "prepared panels must not be an injection seam"
    );
    faultinject::disarm();
    assert_eq!(got, reference);

    // Downstream faults are still caught and repaired.
    for site in [FaultSite::Acc, FaultSite::Residue] {
        faultinject::arm_once(site);
        let got = emu.execute_prepared(&pa, &pb);
        faultinject::disarm();
        assert_eq!(got, reference, "{site:?} must recover bit-identically");
    }
}

const POLICIES: [FaultPolicy; 3] = [
    FaultPolicy::Retry { max_retries: 2 },
    FaultPolicy::RetryThenScalar { max_retries: 2 },
    // max_retries = 0: the very first mismatch degrades to the scalar
    // oracle — the deepest recovery path.
    FaultPolicy::RetryThenScalar { max_retries: 0 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DGEMM: a single flip at any site, under any recovering policy,
    /// in either mode, yields a bit-identical product with nothing left
    /// unrecovered.
    #[test]
    fn dgemm_recovers_bit_identical(
        m in 1usize..=24,
        n in 1usize..=24,
        k in 1usize..=32,
        nmod in 4usize..=10,
        site_idx in 0usize..4,
        policy_idx in 0usize..3,
        accurate in 0usize..2,
        seed in 0u64..500,
    ) {
        let _g = injector_lock();
        let mode = if accurate == 1 { Mode::Accurate } else { Mode::Fast };
        let a = phi_matrix_f64(m, k, 0.6, seed, 0);
        let b = phi_matrix_f64(k, n, 0.6, seed + 7, 1);
        let reference = Ozaki2::new(nmod, mode)
            .with_fault_policy(FaultPolicy::Off)
            .gemm(GemmArgs::new(&a, &b))
            .unwrap()
            .c;
        let emu = Ozaki2::new(nmod, mode).with_fault_policy(POLICIES[policy_idx]);
        faultinject::arm_once(SITES[site_idx]);
        let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
        faultinject::disarm();
        let rep = out.report.fault.expect("active policy must report");
        prop_assert_eq!(rep.unrecovered, 0, "site {:?}: {:?}", SITES[site_idx], rep);
        prop_assert_eq!(
            &out.c, &reference,
            "site {:?} policy {:?} {:?}", SITES[site_idx], POLICIES[policy_idx], mode
        );
    }

    /// SGEMM (f32 element path, staged output): same recovery contract.
    #[test]
    fn sgemm_recovers_bit_identical(
        m in 1usize..=20,
        n in 1usize..=20,
        k in 1usize..=24,
        site_idx in 0usize..4,
        policy_idx in 0usize..3,
        accurate in 0usize..2,
        seed in 0u64..500,
    ) {
        let _g = injector_lock();
        let mode = if accurate == 1 { Mode::Accurate } else { Mode::Fast };
        let a = phi_matrix_f32(m, k, 0.5, seed, 0);
        let b = phi_matrix_f32(k, n, 0.5, seed + 7, 1);
        let reference = Ozaki2::new(8, mode)
            .with_fault_policy(FaultPolicy::Off)
            .gemm(GemmArgs::new(&a, &b))
            .unwrap()
            .c;
        let emu = Ozaki2::new(8, mode).with_fault_policy(POLICIES[policy_idx]);
        faultinject::arm_once(SITES[site_idx]);
        let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
        faultinject::disarm();
        let rep = out.report.fault.expect("active policy must report");
        prop_assert_eq!(rep.unrecovered, 0, "site {:?}: {:?}", SITES[site_idx], rep);
        prop_assert_eq!(
            &out.c, &reference,
            "site {:?} policy {:?} {:?}", SITES[site_idx], POLICIES[policy_idx], mode
        );
    }

    /// The per-call override: `GemmArgs::fault_policy` beats the
    /// emulator-wide setting in both directions (arming on an `Off`
    /// emulator, disarming on a `Retry` one).
    #[test]
    fn per_call_policy_override(
        m in 1usize..=16,
        n in 1usize..=16,
        k in 1usize..=24,
        seed in 0u64..200,
    ) {
        let _g = injector_lock();
        let a = phi_matrix_f64(m, k, 0.6, seed, 0);
        let b = phi_matrix_f64(k, n, 0.6, seed + 7, 1);
        let off_emu = Ozaki2::new(6, Mode::Fast).with_fault_policy(FaultPolicy::Off);
        let reference = off_emu.gemm(GemmArgs::new(&a, &b)).unwrap().c;

        // Arm the policy per call on an Off emulator: recovery works.
        faultinject::arm_once(FaultSite::Residue);
        let out = off_emu
            .gemm(GemmArgs::new(&a, &b).fault_policy(FaultPolicy::Retry { max_retries: 2 }))
            .unwrap();
        faultinject::disarm();
        prop_assert_eq!(&out.c, &reference);
        let rep = out.report.fault.expect("override must activate ABFT");
        prop_assert_eq!(rep.unrecovered, 0);

        // Disarm per call on a protected emulator: no report attached.
        let ret_emu =
            Ozaki2::new(6, Mode::Fast).with_fault_policy(FaultPolicy::Retry { max_retries: 2 });
        let out = ret_emu
            .gemm(GemmArgs::new(&a, &b).fault_policy(FaultPolicy::Off))
            .unwrap();
        prop_assert!(out.report.fault.is_none());
        prop_assert_eq!(&out.c, &reference);
    }
}
