//! Integration tests for the figure-level performance claims through the
//! public umbrella API (the per-number calibration lives in
//! `gemm-perfmodel`'s unit tests; these check the cross-figure story).

use gemm_perfmodel::{
    breakdown, evaluation_devices, fig4_dgemm_throughput, fig5_sgemm_throughput, fig8_dgemm_power,
    fig9_sgemm_power, gh200, headline, Os2Input, Os2Mode, SWEEP_NS,
};

#[test]
fn figure4_and_figure8_trends_agree() {
    // §5.4: "power efficiency exhibits trends similar to those of
    // throughput performance" — the rank order of methods at n = 16384
    // must broadly agree between Fig. 4 and Fig. 8.
    for device in evaluation_devices() {
        let tf = fig4_dgemm_throughput(device);
        let pw = fig8_dgemm_power(device);
        let last = SWEEP_NS.len() - 1;
        let rank = |series: &[gemm_perfmodel::Series]| -> Vec<String> {
            let mut v: Vec<(String, f64)> = series
                .iter()
                .map(|s| (s.label.clone(), s.points[last].1))
                .collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            v.into_iter().map(|(l, _)| l).take(3).collect()
        };
        let top_tf = rank(&tf);
        let top_pw = rank(&pw);
        // The throughput winner should be top-3 in power efficiency.
        assert!(
            top_pw.contains(&top_tf[0]),
            "{}: Fig4 winner {} not in Fig8 top-3 {:?}",
            device.name,
            top_tf[0],
            top_pw
        );
    }
}

#[test]
fn sgemm_emulation_power_catches_up_earlier_than_throughput() {
    // §5.4: "for smaller problem sizes, the results of Ozaki scheme II
    // reached those of existing emulation, DGEMM, and SGEMM" (power closes
    // the gap before throughput does). Compare the smallest n where
    // OS II-fast-8 >= SGEMM in each metric on RTX 5080.
    let device = gemm_perfmodel::rtx5080();
    let find_cross = |series: &[gemm_perfmodel::Series]| -> Option<usize> {
        let sgemm = series.iter().find(|s| s.label == "SGEMM").unwrap();
        let emu = series.iter().find(|s| s.label == "OS II-fast-8").unwrap();
        sgemm
            .points
            .iter()
            .zip(&emu.points)
            .find(|((_, s), (_, e))| e >= s)
            .map(|((n, _), _)| *n)
    };
    let cross_tf = find_cross(&fig5_sgemm_throughput(device));
    let cross_pw = find_cross(&fig9_sgemm_power(device));
    let cross_pw = cross_pw.expect("power efficiency must cross");
    match cross_tf {
        Some(n_tf) => assert!(
            cross_pw <= n_tf,
            "power ({cross_pw}) after throughput ({n_tf})"
        ),
        None => { /* throughput never crosses: power crossing earlier trivially */ }
    }
}

#[test]
fn breakdown_overhead_shrinks_with_n_everywhere() {
    // §5.3's conclusion: "for n >= 16384, Ozaki scheme II can be performed
    // even more efficiently" — the non-GEMM share decreases in n on every
    // device and in both modes.
    for device in evaluation_devices() {
        for mode in [Os2Mode::Fast, Os2Mode::Accurate] {
            let bars = breakdown(device, 15, mode, Os2Input::F64);
            let gemm_share = |b: &gemm_perfmodel::BreakdownBar| {
                b.shares
                    .iter()
                    .find(|(l, _)| l.contains("int8 GEMM"))
                    .map(|(_, f)| *f)
                    .unwrap()
            };
            let first = gemm_share(&bars[0]);
            let last = gemm_share(&bars[bars.len() - 1]);
            assert!(
                last > first,
                "{} {:?}: GEMM share must grow with n ({first} -> {last})",
                device.name,
                mode
            );
        }
    }
}

#[test]
fn headline_is_best_on_gh200_dgemm() {
    // The paper headlines GH200; the model should indeed show GH200 as the
    // device where DGEMM emulation is closest to (but above) 1x among the
    // datacenter parts, with RTX 5080 as the runaway.
    let hs: Vec<_> = evaluation_devices().into_iter().map(headline).collect();
    let gh = hs.iter().find(|h| h.device == "GH200").unwrap();
    let rtx = hs.iter().find(|h| h.device == "RTX 5080").unwrap();
    assert!(gh.dgemm_speedup > 1.0);
    assert!(rtx.dgemm_speedup > 10.0 * gh.dgemm_speedup);
}

#[test]
fn modelled_gh200_matches_measured_phase_structure() {
    // The modelled GH200 breakdown and this repository's measured CPU
    // breakdown must agree qualitatively: int8 GEMM is the largest phase,
    // convert is the largest non-GEMM phase (fast mode, moderate n).
    let bars = breakdown(gh200(), 15, Os2Mode::Fast, Os2Input::F64);
    let bar = &bars[1]; // n = 2048
    let get = |tag: &str| {
        bar.shares
            .iter()
            .find(|(l, _)| l.contains(tag))
            .map(|(_, f)| *f)
            .unwrap()
    };
    let gemm = get("int8 GEMM");
    let convert = get("convert");
    let modred = get("mod");
    for (label, share) in &bar.shares {
        if !label.contains("int8 GEMM") {
            assert!(gemm > *share, "GEMM must dominate over {label}");
        }
    }
    // The two plane-sized passes (convert, mod) lead the overheads.
    assert!(convert + modred > get("scale") + get("trunc") + get("fold"));

    // Measured counterpart on the CPU substrate: check structure, not
    // wall-clock ratios (CI machines are noisy and shared).
    let a = gemm_dense::workload::phi_matrix_f64(160, 160, 0.5, 3, 0);
    let b = gemm_dense::workload::phi_matrix_f64(160, 160, 0.5, 3, 1);
    let (_, rep) = ozaki2::Ozaki2::new(15, ozaki2::Mode::Fast).dgemm_with_report(&a, &b);
    let rows = rep.phases.as_rows();
    assert_eq!(
        rows.len(),
        7,
        "one row per Algorithm-1 phase group, plus the ABFT verify row"
    );
    let gemm_t = rows
        .iter()
        .find(|(l, _)| l.contains("int8 GEMM"))
        .unwrap()
        .1;
    assert!(gemm_t > 0.0, "the INT8 GEMM phase must be timed");
    assert!(
        rep.phases.total().as_secs_f64() >= gemm_t,
        "total covers all phases"
    );
}
