//! Cross-crate exactness and failure-injection tests.

use gemmul8::prelude::*;
use ozaki2::{EmulationError, OperandSide};

/// Integer-valued inputs small enough that every pipeline step is exact.
/// For N <= 10 the fold's FMA chain also stays exact and the result is
/// **bitwise** the integer product; for larger N the line-11 fold rounds
/// once at the scaled-C'' magnitude, giving at most a couple of ulps.
#[test]
fn integer_products_are_bit_exact() {
    let mut rng = Philox4x32::new(424242);
    for &(m, n, k) in &[(17usize, 13usize, 29usize), (32, 32, 64), (5, 40, 7)] {
        let a = Matrix::from_fn(m, k, |_, _| ((rng.next_u32() % 201) as f64) - 100.0);
        let b = Matrix::from_fn(k, n, |_, _| ((rng.next_u32() % 201) as f64) - 100.0);
        let exact = NativeDgemm.matmul_f64(&a, &b); // exact: small integers
        for nmod in [4usize, 8, 10] {
            for mode in [Mode::Fast, Mode::Accurate] {
                let c = Ozaki2::new(nmod, mode).dgemm(&a, &b);
                for (got, want) in c.iter().zip(exact.iter()) {
                    assert_eq!(got, want, "{m}x{n}x{k} N={nmod} {mode:?}");
                }
            }
        }
        for nmod in [15usize, 20] {
            for mode in [Mode::Fast, Mode::Accurate] {
                let c = Ozaki2::new(nmod, mode).dgemm(&a, &b);
                for (got, want) in c.iter().zip(exact.iter()) {
                    let tol = 4.0 * f64::EPSILON * want.abs().max(1.0);
                    assert!(
                        (got - want).abs() <= tol,
                        "{m}x{n}x{k} N={nmod} {mode:?}: {got} vs {want}"
                    );
                }
            }
        }
    }
}

#[test]
fn integer_products_bit_exact_through_sgemm_path() {
    let mut rng = Philox4x32::new(7);
    let (m, n, k) = (24usize, 24usize, 48usize);
    let a = Matrix::from_fn(m, k, |_, _| ((rng.next_u32() % 31) as f32) - 15.0);
    let b = Matrix::from_fn(k, n, |_, _| ((rng.next_u32() % 31) as f32) - 15.0);
    let exact = NativeSgemm.matmul_f32(&a, &b);
    for nmod in [6usize, 10, 14] {
        let c = Ozaki2::new(nmod, Mode::Fast).sgemm(&a, &b);
        for (got, want) in c.iter().zip(exact.iter()) {
            assert_eq!(got, want, "N={nmod}");
        }
    }
}

#[test]
fn k_blocking_path_matches_direct() {
    // k just above 2^17 exercises the block-residue accumulation; compare
    // against native DGEMM on integer inputs (exact on both sides).
    let k = (1 << 17) + 64;
    let (m, n) = (3usize, 2usize);
    let mut rng = Philox4x32::new(99);
    let a = Matrix::from_fn(m, k, |_, _| ((rng.next_u32() % 5) as f64) - 2.0);
    let b = Matrix::from_fn(k, n, |_, _| ((rng.next_u32() % 5) as f64) - 2.0);
    // Exact integer product via i64.
    let exact = Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0i64;
        for h in 0..k {
            acc += (a[(i, h)] as i64) * (b[(h, j)] as i64);
        }
        acc as f64
    });
    let c = Ozaki2::new(8, Mode::Fast).dgemm(&a, &b);
    for (got, want) in c.iter().zip(exact.iter()) {
        assert_eq!(got, want, "k-blocked path must stay exact");
    }
}

#[test]
fn rejects_nan_and_inf_everywhere() {
    let good = phi_matrix_f64(8, 8, 0.5, 1, 0);
    for bad_val in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut bad = good.clone();
        bad[(3, 4)] = bad_val;
        let e = Ozaki2::new(8, Mode::Fast)
            .try_dgemm(&bad, &good)
            .unwrap_err();
        assert_eq!(
            e,
            EmulationError::NonFiniteInput {
                side: OperandSide::A,
                index: 35, // col-major storage offset of (3, 4) with m = 8
            }
        );
        let e = Ozaki2::new(8, Mode::Fast)
            .try_dgemm(&good, &bad)
            .unwrap_err();
        assert_eq!(
            e,
            EmulationError::NonFiniteInput {
                side: OperandSide::B,
                index: 35,
            }
        );
    }
}

#[test]
fn extreme_exponents_survive() {
    // Entries spanning 2^±300: the power-of-two scaling paths must not
    // overflow/underflow (scale_by_pow2 splits out-of-range exponents).
    let a = Matrix::from_fn(8, 8, |i, j| {
        let base = phi_matrix_f64(8, 8, 0.5, 5, 0)[(i, j)];
        base * 2f64.powi(if i % 2 == 0 { 300 } else { -300 })
    });
    let b = Matrix::from_fn(8, 8, |i, j| {
        let base = phi_matrix_f64(8, 8, 0.5, 5, 1)[(i, j)];
        base * 2f64.powi(if j % 2 == 0 { -280 } else { 280 })
    });
    let exact = dd_gemm(&a, &b);
    let c = Ozaki2::new(15, Mode::Fast).dgemm(&a, &b);
    assert!(c.iter().all(|x| x.is_finite()));
    let err = max_rel_error_vs_dd(&c, &exact);
    assert!(err < 1e-9, "err={err:e}");
}

#[test]
fn zero_matrices_and_zero_rows() {
    let z = MatF64::zeros(16, 16);
    let a = phi_matrix_f64(16, 16, 0.5, 3, 0);
    let c = Ozaki2::new(10, Mode::Fast).dgemm(&z, &a);
    assert!(c.iter().all(|&x| x == 0.0));
    let c = Ozaki2::new(10, Mode::Accurate).dgemm(&a, &z);
    assert!(c.iter().all(|&x| x == 0.0));

    // A single zero row must produce a zero output row, everything else
    // unharmed.
    let mut a0 = a.clone();
    for j in 0..16 {
        a0[(5, j)] = 0.0;
    }
    let b = phi_matrix_f64(16, 16, 0.5, 3, 1);
    let c = Ozaki2::new(12, Mode::Fast).dgemm(&a0, &b);
    for j in 0..16 {
        assert_eq!(c[(5, j)], 0.0);
    }
    let exact = dd_gemm(&a0, &b);
    assert!(max_rel_error_vs_dd(&c, &exact) < 1e-8);
}

#[test]
fn determinism_across_runs() {
    let a = phi_matrix_f64(64, 64, 1.0, 2024, 0);
    let b = phi_matrix_f64(64, 64, 1.0, 2024, 1);
    let runs: Vec<MatF64> = (0..3)
        .map(|_| Ozaki2::new(12, Mode::Accurate).dgemm(&a, &b))
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn all_n_values_work_dgemm() {
    let a = phi_matrix_f64(16, 16, 0.5, 31, 0);
    let b = phi_matrix_f64(16, 16, 0.5, 31, 1);
    let exact = dd_gemm(&a, &b);
    let mut prev = f64::INFINITY;
    for nmod in 2..=20 {
        let c = Ozaki2::new(nmod, Mode::Fast).dgemm(&a, &b);
        let e = max_rel_error_vs_dd(&c, &exact).max(1e-17);
        // Monotone-ish: allow small noise, catch catastrophic regressions.
        assert!(
            e < prev * 16.0,
            "N={nmod}: error {e:e} regressed vs {prev:e}"
        );
        prev = e;
    }
    assert!(
        prev < 1e-15,
        "N=20 should be beyond double precision: {prev:e}"
    );
}

#[test]
fn all_n_values_work_sgemm() {
    let a = phi_matrix_f32(16, 16, 0.5, 32, 0);
    let b = phi_matrix_f32(16, 16, 0.5, 32, 1);
    for nmod in 2..=18 {
        let c = Ozaki2::new(nmod, Mode::Fast).sgemm(&a, &b);
        assert!(c.iter().all(|x| x.is_finite()), "N={nmod}");
    }
}

/// Worker-count bit-identity for the facade surface: the same products
/// at `W ∈ {1, 2, 4, 8}` (monolithic DGEMM/SGEMM with engine stripes,
/// strided views, both modes) must match the 1-worker result bitwise —
/// parallelism is a throughput knob, never an accuracy knob. Runs under
/// the forced-scalar and fault-injection CI jobs too, so the scalar
/// kernels and concurrent ABFT recovery are held to the same bar.
#[test]
fn facade_results_are_bit_identical_across_worker_counts() {
    let a = phi_matrix_f64(96, 80, 0.6, 77, 0);
    let b = phi_matrix_f64(80, 88, 0.6, 78, 1);
    let af = phi_matrix_f32(64, 48, 0.5, 79, 0);
    let bf = phi_matrix_f32(48, 56, 0.5, 80, 1);

    rayon::set_num_threads(1);
    let want_d_fast = Ozaki2::new(12, Mode::Fast).dgemm(&a, &b);
    let want_d_acc = Ozaki2::new(12, Mode::Accurate).dgemm(&a, &b);
    let want_s = Ozaki2::new(8, Mode::Fast).sgemm(&af, &bf);

    for w in [2usize, 4, 8] {
        // The builder override is the public road to the same pool knob.
        let emu = Ozaki2::builder()
            .accuracy(Accuracy::FixedN(12))
            .mode(Mode::Fast)
            .workers(w)
            .build()
            .unwrap();
        assert_eq!(rayon::current_num_threads(), w);
        assert_eq!(
            emu.dgemm(&a, &b),
            want_d_fast,
            "DGEMM fast diverged at W={w}"
        );
        assert_eq!(
            Ozaki2::new(12, Mode::Accurate).dgemm(&a, &b),
            want_d_acc,
            "DGEMM accurate diverged at W={w}"
        );
        assert_eq!(
            Ozaki2::new(8, Mode::Fast).sgemm(&af, &bf),
            want_s,
            "SGEMM diverged at W={w}"
        );
    }
    rayon::set_num_threads(0);
}

#[test]
fn report_phases_cover_total() {
    let a = phi_matrix_f64(48, 48, 0.5, 8, 0);
    let b = phi_matrix_f64(48, 48, 0.5, 8, 1);
    let (_, rep) = Ozaki2::new(10, Mode::Fast).dgemm_with_report(&a, &b);
    let total = rep.phases.total();
    assert!(total.as_nanos() > 0);
    assert_eq!(rep.n_moduli, 10);
    assert_eq!(rep.shape, (48, 48, 48));
    let rows = rep.phases.as_rows();
    assert_eq!(rows.len(), 7);
}

/// The fma-bf16 backend is bit-exact on integer inputs inside its own
/// pool's exact window, like the INT8 backend: both emulators reproduce
/// the integer product bitwise, so they are also bitwise equal to each
/// other — the strongest cross-backend agreement the pools allow.
#[test]
fn fma_backend_integer_products_are_bit_exact() {
    let mut rng = Philox4x32::new(515151);
    for &(m, n, k) in &[(11usize, 9usize, 21usize), (24, 16, 48)] {
        let a = Matrix::from_fn(m, k, |_, _| ((rng.next_u32() % 41) as f64) - 20.0);
        let b = Matrix::from_fn(k, n, |_, _| ((rng.next_u32() % 41) as f64) - 20.0);
        let mut want = Matrix::<f64>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for h in 0..k {
                    acc += (a[(i, h)] as i64) * (b[(h, j)] as i64);
                }
                want[(i, j)] = acc as f64;
            }
        }
        for nmod in [6usize, 8, 10] {
            let fma = Ozaki2::new(nmod, Mode::Fast)
                .with_backend(BackendKind::FmaBf16)
                .dgemm(&a, &b);
            assert_eq!(fma, want, "fma-bf16 N={nmod} {m}x{n}x{k}");
        }
        // Cross-backend bitwise agreement needs *both* pools to keep the
        // scaled product inside 2^53: at N = 10 the INT8 pool's fast
        // scaling lifts these tiny integers past it (a ulp of rounding in
        // the fold — pre-existing INT8 behavior), while the small-moduli
        // FMA pool stays exact. Compare where both are exact.
        for nmod in [6usize, 8] {
            let fma = Ozaki2::new(nmod, Mode::Fast)
                .with_backend(BackendKind::FmaBf16)
                .dgemm(&a, &b);
            let int8 = Ozaki2::new(nmod, Mode::Fast).dgemm(&a, &b);
            assert_eq!(fma, int8, "cross-backend N={nmod}");
        }
    }
}

/// A preparation from an INT8 emulator must be refused — with the typed
/// mismatch reason — by an fma-bf16 emulator of the same `N`, and vice
/// versa: prepared panels are pool-specific.
#[test]
fn prepared_operands_never_cross_backends() {
    let a = phi_matrix_f64(12, 20, 0.5, 5, 0);
    let b = phi_matrix_f64(20, 8, 0.5, 5, 1);
    let int8 = Ozaki2::new(8, Mode::Fast);
    let fma = Ozaki2::new(8, Mode::Fast).with_backend(BackendKind::FmaBf16);
    let pa_int8 = int8.prepare_a(&a);
    let pb_fma = fma.try_prepare_b(&b).expect("fma prepare");
    // Mixed pair on either executor: refused for the foreign side.
    for emu in [&int8, &fma] {
        match emu.try_execute_prepared(&pa_int8, &pb_fma) {
            Err(EmulationError::PreparedMismatch { reason }) => {
                assert!(
                    reason.contains("backend"),
                    "reason should name the backend: {reason}"
                );
            }
            other => panic!("expected PreparedMismatch, got {other:?}"),
        }
    }
    // Matched pairs still execute bit-identically to the monolithic path.
    let pb_int8 = int8.prepare_b(&b);
    assert_eq!(
        int8.execute_prepared(&pa_int8, &pb_int8),
        int8.dgemm(&a, &b)
    );
    let pa_fma = fma.try_prepare_a(&a).expect("fma prepare");
    assert_eq!(fma.execute_prepared(&pa_fma, &pb_fma), fma.dgemm(&a, &b));
}
