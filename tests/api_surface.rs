//! Public-API surface snapshot: the consolidation guard.
//!
//! PR 5 collapsed the combinatorial `dgemm`/`sgemm` × `try_` ×
//! `_with_report` × `_ws` × `_into` growth into one element-generic
//! view facade (`Ozaki2::gemm` / `gemm_into` + `GemmArgs` + the
//! accuracy builder), keeping the named entries as thin wrappers. This
//! test pins that state two ways:
//!
//! 1. the canonical items must exist and work (checked by using them);
//! 2. the set of `pub fn`s on `impl Ozaki2` (scanned from source) must
//!    equal the frozen whitelist below — adding a new named entry fails
//!    this test, forcing the addition through the facade (or an explicit
//!    whitelist change with review).

use gemm_dense::{MatView, MatViewMut};
use ozaki2::{Accuracy, GemmArgs, GemmOut, Mode, Ozaki2, Ozaki2Builder};
use std::collections::BTreeSet;
use std::path::Path;

/// The consolidated `impl Ozaki2` surface. Keep SMALL: new capabilities
/// belong on the facade (`gemm`/`gemm_into` args) or the builder, not as
/// new named methods.
const OZAKI2_PUB_FNS: &[&str] = &[
    // construction
    "new",
    "builder",
    "n_moduli",
    "mode",
    "fault_policy",
    "with_fault_policy",
    // residue-backend selection (PR 10: multi-backend engine)
    "backend",
    "with_backend",
    // the canonical facade
    "gemm",
    "gemm_into",
    // named f64 wrappers (thin delegates, kept for ergonomics)
    "dgemm",
    "try_dgemm",
    "dgemm_with_report",
    "try_dgemm_with_report",
    "dgemm_ws",
    "try_dgemm_with_report_ws",
    "dgemm_into_ws",
    "try_dgemm_into_ws",
    // named f32 wrappers
    "sgemm",
    "try_sgemm",
    "sgemm_with_report",
    "try_sgemm_with_report",
    "sgemm_ws",
    "try_sgemm_with_report_ws",
    // BLAS-signature surface
    "dgemm_blas",
    "sgemm_blas",
    // prepare/execute split (canonical view entries + delegating forms)
    "prepare_a",
    "try_prepare_a",
    "try_prepare_a_view",
    "try_prepare_a_slice",
    "prepare_b",
    "try_prepare_b",
    "try_prepare_b_view",
    "try_prepare_b_slice",
    "try_prepare_a_f32",
    "try_prepare_a_slice_f32",
    "try_prepare_b_f32",
    "try_prepare_b_slice_f32",
    "execute_prepared",
    "try_execute_prepared",
    "try_execute_prepared_into_ws",
    "try_execute_into_ws",
];

/// Collect the `pub fn` names declared directly inside `impl Ozaki2 {`
/// blocks of one source file (brace-depth scan; good enough for rustfmt'd
/// source, which this repo enforces in CI).
fn pub_fns_in_impl_ozaki2(src: &str) -> Vec<String> {
    let mut found = Vec::new();
    let mut in_impl = false;
    let mut depth = 0i32;
    for line in src.lines() {
        let trimmed = line.trim();
        if !in_impl && (trimmed == "impl Ozaki2 {" || trimmed.starts_with("impl Ozaki2 {")) {
            in_impl = true;
            depth = 0;
        }
        if in_impl {
            if depth == 1 {
                if let Some(rest) = trimmed.strip_prefix("pub fn ") {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    found.push(name);
                }
            }
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth <= 0 {
                in_impl = false;
            }
        }
    }
    found
}

#[test]
fn ozaki2_surface_matches_the_frozen_whitelist() {
    let core_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src");
    let mut got: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&core_src).expect("read crates/core/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read source");
        got.extend(pub_fns_in_impl_ozaki2(&src));
    }
    let got: BTreeSet<String> = got.into_iter().collect();
    let want: BTreeSet<String> = OZAKI2_PUB_FNS.iter().map(|s| s.to_string()).collect();

    let unexpected: Vec<_> = got.difference(&want).collect();
    let missing: Vec<_> = want.difference(&got).collect();
    assert!(
        unexpected.is_empty(),
        "new pub fn(s) on Ozaki2 outside the consolidated surface: \
         {unexpected:?}. Extend the facade (GemmArgs / builder) instead of \
         adding named entries — or update the whitelist in tests/api_surface.rs \
         with reviewer sign-off."
    );
    assert!(
        missing.is_empty(),
        "whitelisted Ozaki2 entry points disappeared: {missing:?} \
         (breaking change — update tests/api_surface.rs deliberately)"
    );
    // Belt and braces: the surface must never regrow past the frozen size.
    assert_eq!(got.len(), OZAKI2_PUB_FNS.len());
}

#[test]
fn canonical_items_exist_and_compose() {
    // The three pillars, exercised end to end: views → facade → builder.
    let emu: Ozaki2 = Ozaki2::builder()
        .accuracy(Accuracy::TargetError(2f64.powi(-52)))
        .mode(Mode::Fast)
        .k(1024)
        .build()
        .expect("DGEMM-level at k=1024 is reachable");
    assert_eq!(emu.n_moduli(), 15, "the paper's §5.1 sweet spot");

    let a = gemm_dense::workload::phi_matrix_f64(8, 12, 0.5, 1, 0);
    let b = gemm_dense::workload::phi_matrix_f64(12, 6, 0.5, 1, 1);
    let va: MatView<'_, f64> = a.view();
    let out: GemmOut<f64> = emu.gemm(GemmArgs::new(va, b.view())).unwrap();
    assert_eq!(out.c, emu.dgemm(&a, &b));

    let mut cbuf = vec![0f64; 8 * 6];
    let cview: MatViewMut<'_, f64> = MatViewMut::col_major(&mut cbuf, 8, 6);
    emu.gemm_into(GemmArgs::new(&a, &b), cview).unwrap();
    assert_eq!(&cbuf, out.c.as_slice());

    // Builder type is nameable (for APIs that store one).
    let _builder: Ozaki2Builder = Ozaki2::builder().accuracy(Accuracy::FixedN(8));

    // Backend selection rides the same pillars: the builder resolves
    // accuracy per pool, and the per-call override lives on GemmArgs.
    let fma = Ozaki2::builder()
        .accuracy(Accuracy::Fp32Equivalent)
        .backend(ozaki2::BackendKind::FmaBf16)
        .k(1024)
        .build()
        .expect("SGEMM-level is reachable on the fma-bf16 pool");
    assert_eq!(fma.backend(), ozaki2::BackendKind::FmaBf16);
    let out2 = fma.gemm(GemmArgs::new(&a, &b)).unwrap();
    assert_eq!(out2.c.shape(), (8, 6));
}
