//! Downstream applications built on the emulated GEMM — the workloads the
//! paper's introduction motivates (HPL-style linear solves, quantum-
//! chemistry-style density purification per paper reference \[2\]).

pub mod lu;
pub mod purify;
