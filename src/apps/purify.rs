//! McWeeny density-matrix purification on a pluggable GEMM — the quantum-
//! chemistry workload of the paper's reference \[2\] (Dawson, Ozaki, Domke,
//! Nakajima: "Reducing Numerical Precision Requirements in Quantum
//! Chemistry Calculations").
//!
//! Iterates `P ← 3P² - 2P³`, which drives the eigenvalues of a symmetric
//! `P₀` with spectrum in `[0, 1]` to the nearest of {0, 1}; the fixed
//! point is the idempotent density matrix. All the flops are GEMMs, so
//! this is a realistic consumer of emulated matrix products.

use gemm_dense::{MatF64, MatMulF64, Matrix};

/// Build a symmetric test matrix with *known* spectrum via a Householder
/// similarity: `P = Q D Qᵀ` with `Q = I - 2vvᵀ`. Eigenvalues alternate
/// between `lo` and `hi` (occupied/virtual states).
pub fn known_spectrum_matrix(n: usize, lo: f64, hi: f64, seed: u64) -> MatF64 {
    let mut rng = gemm_dense::Philox4x32::new(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.uniform_f64() - 0.5).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut v {
        *x /= norm;
    }
    let d = |i: usize| if i.is_multiple_of(2) { hi } else { lo };
    // P = (I - 2vvᵀ) D (I - 2vvᵀ): expand to avoid forming Q explicitly.
    // P = D - 2v(vᵀD) - 2(Dv)vᵀ + 4 v (vᵀDv) vᵀ.
    let vdv: f64 = (0..n).map(|i| v[i] * d(i) * v[i]).sum();
    Matrix::from_fn(n, n, |i, j| {
        let mut p = if i == j { d(i) } else { 0.0 };
        p -= 2.0 * v[i] * d(j) * v[j];
        p -= 2.0 * d(i) * v[i] * v[j];
        p += 4.0 * v[i] * vdv * v[j];
        p
    })
}

/// Outcome of a purification run.
pub struct PurifyResult {
    /// Final (near-idempotent) matrix.
    pub p: MatF64,
    /// `||P² - P||_F` per iteration.
    pub idempotency_history: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Run McWeeny purification until `||P² - P||_F < tol` or `max_iter`.
pub fn mcweeny(p0: &MatF64, gemm: &dyn MatMulF64, tol: f64, max_iter: usize) -> PurifyResult {
    let n = p0.rows();
    assert_eq!(p0.shape(), (n, n));
    let mut p = p0.clone();
    let mut history = Vec::new();
    for iter in 0..max_iter {
        let p2 = gemm.matmul_f64(&p, &p);
        let p3 = gemm.matmul_f64(&p2, &p);
        // Idempotency error of the *current* iterate.
        let err = {
            let mut s = 0.0f64;
            for (x2, x) in p2.iter().zip(p.iter()) {
                let d = x2 - x;
                s += d * d;
            }
            s.sqrt()
        };
        history.push(err);
        if err < tol {
            return PurifyResult {
                p,
                idempotency_history: history,
                iterations: iter,
            };
        }
        p = Matrix::from_fn(n, n, |i, j| 3.0 * p2[(i, j)] - 2.0 * p3[(i, j)]);
    }
    PurifyResult {
        p,
        idempotency_history: history,
        iterations: max_iter,
    }
}

/// Trace of a square matrix (counts occupied states after purification).
pub fn trace(p: &MatF64) -> f64 {
    (0..p.rows()).map(|i| p[(i, i)]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::NativeDgemm;

    #[test]
    fn known_spectrum_is_symmetric() {
        let p = known_spectrum_matrix(24, 0.1, 0.9, 5);
        for i in 0..24 {
            for j in 0..24 {
                assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn purification_converges_and_preserves_trace() {
        let n = 32;
        let p0 = known_spectrum_matrix(n, 0.15, 0.85, 11);
        let r = mcweeny(&p0, &NativeDgemm, 1e-10, 60);
        assert!(r.iterations < 60, "did not converge");
        // Eigenvalues 0.85 -> 1 (n/2 of them), 0.15 -> 0: trace = n/2.
        let tr = trace(&r.p);
        assert!((tr - (n / 2) as f64).abs() < 1e-6, "trace = {tr}");
        // Error history decreases monotonically (quadratic convergence).
        for w in r.idempotency_history.windows(2) {
            assert!(w[1] < w[0] * 1.01);
        }
    }
}
