//! Blocked right-looking LU factorisation with partial pivoting where the
//! trailing-matrix update — the O(n³) part, i.e. HPL's hot loop — runs
//! through any [`MatMulF64`] method, emulated or native.
//!
//! The paper's §5.1 observation: "HPL can employ emulation with 14 or 15
//! moduli". This module lets tests and examples verify exactly that: the
//! solve residual with `OS II-fast-15` matches the native-DGEMM residual.

use gemm_dense::{MatF64, MatMulF64, Matrix};

/// Result of [`lu_factor`].
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    pub lu: MatF64,
    /// Row permutation (pivoting) applied: `piv[step] = row swapped in`.
    pub piv: Vec<usize>,
}

/// Blocked LU with partial pivoting; `gemm` performs the Schur-complement
/// updates `A22 -= A21 * A12`.
///
/// # Panics
/// If the matrix is not square or a zero pivot is encountered.
pub fn lu_factor(a: &MatF64, block: usize, gemm: &dyn MatMulF64) -> LuFactors {
    let (n, nc) = a.shape();
    assert_eq!(n, nc, "LU needs a square matrix");
    assert!(block >= 1);
    let mut lu = a.clone();
    let mut piv = Vec::with_capacity(n);

    let mut j0 = 0;
    while j0 < n {
        let jb = block.min(n - j0);
        // --- Unblocked panel factorisation on columns j0..j0+jb ----------
        for j in j0..j0 + jb {
            // Pivot search in column j, rows j..n.
            let mut p = j;
            let mut best = lu[(j, j)].abs();
            for i in j + 1..n {
                let v = lu[(i, j)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            assert!(best > 0.0, "singular matrix at step {j}");
            piv.push(p);
            if p != j {
                for c in 0..n {
                    let t = lu[(j, c)];
                    lu[(j, c)] = lu[(p, c)];
                    lu[(p, c)] = t;
                }
            }
            // Eliminate below the pivot within the panel.
            let d = lu[(j, j)];
            for i in j + 1..n {
                lu[(i, j)] /= d;
            }
            for c in j + 1..j0 + jb {
                let ujc = lu[(j, c)];
                if ujc != 0.0 {
                    for i in j + 1..n {
                        let lij = lu[(i, j)];
                        lu[(i, c)] -= lij * ujc;
                    }
                }
            }
        }
        let j1 = j0 + jb;
        if j1 < n {
            // --- U12 := L11^{-1} A12 (unit lower triangular solve) -------
            for c in j1..n {
                for j in j0..j1 {
                    let v = lu[(j, c)];
                    if v != 0.0 {
                        for i in j + 1..j1 {
                            let lij = lu[(i, j)];
                            lu[(i, c)] -= lij * v;
                        }
                    }
                }
            }
            // --- A22 -= L21 * U12 via the pluggable GEMM ------------------
            let l21 = Matrix::from_fn(n - j1, jb, |i, j| lu[(j1 + i, j0 + j)]);
            let u12 = Matrix::from_fn(jb, n - j1, |i, j| lu[(j0 + i, j1 + j)]);
            let update = gemm.matmul_f64(&l21, &u12);
            for c in j1..n {
                for i in j1..n {
                    lu[(i, c)] -= update[(i - j1, c - j1)];
                }
            }
        }
        j0 = j1;
    }
    LuFactors { lu, piv }
}

/// Solve `A x = b` given the factors.
pub fn lu_solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let n = f.lu.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Apply permutation.
    for (j, &p) in f.piv.iter().enumerate() {
        if p != j {
            x.swap(j, p);
        }
    }
    // Forward substitution (unit lower).
    for j in 0..n {
        let xj = x[j];
        if xj != 0.0 {
            for (i, xi) in x.iter_mut().enumerate().take(n).skip(j + 1) {
                *xi -= f.lu[(i, j)] * xj;
            }
        }
    }
    // Back substitution.
    for j in (0..n).rev() {
        x[j] /= f.lu[(j, j)];
        let xj = x[j];
        if xj != 0.0 {
            for (i, xi) in x.iter_mut().enumerate().take(j) {
                *xi -= f.lu[(i, j)] * xj;
            }
        }
    }
    x
}

/// HPL-style scaled residual: `||Ax - b||_inf / (||A||_inf ||x||_inf n eps)`.
/// Values of O(1) (HPL accepts < 16) mean a numerically successful solve.
pub fn hpl_residual(a: &MatF64, x: &[f64], b: &[f64]) -> f64 {
    let n = a.rows();
    let mut r_inf = 0.0f64;
    for i in 0..n {
        let mut ax = 0.0f64;
        for j in 0..n {
            ax += a[(i, j)] * x[j];
        }
        r_inf = r_inf.max((ax - b[i]).abs());
    }
    let a_inf = (0..n)
        .map(|i| (0..n).map(|j| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let x_inf = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    r_inf / (a_inf * x_inf * n as f64 * f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::workload::hpl_like_system;
    use gemm_dense::NativeDgemm;

    #[test]
    fn native_lu_solves_hpl_system() {
        let (a, b) = hpl_like_system(96, 3);
        let f = lu_factor(&a, 32, &NativeDgemm);
        let x = lu_solve(&f, &b);
        let res = hpl_residual(&a, &x, &b);
        assert!(res < 16.0, "HPL residual {res} too large");
        // The RHS was built as row sums, so x ≈ ones.
        for &xi in &x {
            assert!((xi - 1.0).abs() < 1e-8, "x entry {xi}");
        }
    }

    #[test]
    fn block_size_does_not_change_result_materially() {
        let (a, b) = hpl_like_system(64, 9);
        let x1 = lu_solve(&lu_factor(&a, 8, &NativeDgemm), &b);
        let x2 = lu_solve(&lu_factor(&a, 64, &NativeDgemm), &b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
