//! # gemmul8 — Rust reproduction of "High-Performance and Power-Efficient
//! # Emulation of Matrix Multiplication using INT8 Matrix Engines" (SC'25)
//!
//! This umbrella crate re-exports the whole system. The short version:
//!
//! ```
//! use gemmul8::prelude::*;
//!
//! // The paper's workload generator (phi = 0.5 is HPL-like).
//! let a = phi_matrix_f64(64, 64, 0.5, 42, 0);
//! let b = phi_matrix_f64(64, 64, 0.5, 42, 1);
//!
//! // Emulated DGEMM via Ozaki Scheme II on the INT8 engine.
//! let c = Ozaki2::new(15, Mode::Fast).dgemm(&a, &b);
//!
//! // Compare against native DGEMM.
//! let reference = NativeDgemm.matmul_f64(&a, &b);
//! let err = max_relative_error(&c, &reference);
//! assert!(err < 1e-12, "N = 15 is double-precision level: {err:e}");
//! ```
//!
//! Crate map (see docs/ARCHITECTURE.md for the full inventory):
//!
//! * [`ozaki2`] — the paper's contribution (Algorithm 1);
//! * [`gemm_batch`] — batched runtime: prepared-operand cache, workspace
//!   pool, many-GEMM scheduler;
//! * [`gemm_serve`] — many-tenant serving runtime: bounded submission
//!   queue, intensity-driven coalescing, deadline shedding, per-tenant
//!   accounting (see docs/SERVING.md);
//! * [`gemm_dense`] — matrices, native GEMM, Philox RNG, workloads;
//! * [`gemm_engine`] — the simulated INT8 / FP16 / BF16 / TF32 engines;
//! * [`gemm_lowfp`] — software low-precision formats;
//! * [`gemm_exact`] — double-double + 256-bit exact arithmetic (oracles);
//! * [`gemm_baselines`] — ozIMMU, cuMpSGEMM, BF16x9, TF32GEMM;
//! * [`gemm_perfmodel`] — calibrated device model for the paper's figures.

#![warn(missing_docs)]

pub mod apps;

pub use gemm_baselines;
pub use gemm_batch;
pub use gemm_dense;
pub use gemm_engine;
pub use gemm_exact;
pub use gemm_lowfp;
pub use gemm_perfmodel;
pub use gemm_serve;
pub use ozaki2;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use gemm_baselines::{Bf16x9, CuMpSgemm, OzImmu, Tf32Gemm};
    pub use gemm_batch::{BatchedOzaki2, StridedBatchF32, StridedBatchF64, WorkspacePool};
    pub use gemm_dense::norms::{max_relative_error, normwise_relative_error};
    pub use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64, PHI_HPL};
    pub use gemm_dense::{
        Layout, MatF32, MatF64, MatMulF32, MatMulF64, MatView, MatViewMut, Matrix, NativeDgemm,
        NativeSgemm, Philox4x32,
    };
    pub use gemm_exact::{dd_gemm, max_rel_error_vs_dd, Dd};
    pub use gemm_serve::{GemmRequest, JobHandle, Server, TenantStats};
    pub use ozaki2::{
        Accuracy, BackendKind, GemmArgs, GemmOp, GemmOut, GemmPlan, Mode, Ozaki2, PreparedOperand,
        Workspace,
    };
}
