//! Power-efficiency report: the §5.4 story for a chosen problem size,
//! across all three modelled devices.
//!
//! Run: `cargo run --release --example power_report [-- --n=8192]`

use gemm_perfmodel::{evaluation_devices, ops, PerfModel};

fn main() {
    let n: usize = std::env::args()
        .find_map(|a| a.strip_prefix("--n=").and_then(|v| v.parse().ok()))
        .unwrap_or(16384);
    println!("== Modelled power efficiency at m = n = k = {n} ==\n");
    let flops = ops::logical_flops(n, n, n);

    for device in evaluation_devices() {
        let model = PerfModel::new(device);
        println!("-- {} --", device.name);
        println!(
            "{:<16} {:>10} {:>10} {:>14} {:>12}",
            "method", "time ms", "energy J", "GFLOPS/W", "vs native"
        );
        let mut rows: Vec<(String, Vec<ops::Op>, bool)> = vec![
            ("DGEMM".into(), ops::native_dgemm(n, n, n), true),
            (
                "OS II-fast-14".into(),
                ops::ozaki2(n, n, n, 14, ops::Os2Mode::Fast, ops::Os2Input::F64),
                true,
            ),
            ("ozIMMU_EF-8".into(), ops::ozimmu(n, n, n, 8), true),
            ("SGEMM".into(), ops::native_sgemm(n, n, n), false),
            (
                "OS II-fast-8".into(),
                ops::ozaki2(n, n, n, 8, ops::Os2Mode::Fast, ops::Os2Input::F32),
                false,
            ),
            ("BF16x9".into(), ops::bf16x9(n, n, n), false),
        ];
        let dgemm_eff = model.run(&rows[0].1).gflops_per_watt(flops);
        let sgemm_eff = model.run(&rows[3].1).gflops_per_watt(flops);
        for (label, sched, is_dgemm) in rows.drain(..) {
            let est = model.run(&sched);
            let eff = est.gflops_per_watt(flops);
            let baseline = if is_dgemm { dgemm_eff } else { sgemm_eff };
            println!(
                "{:<16} {:>10.2} {:>10.1} {:>14.1} {:>11.0}%",
                label,
                est.time_s * 1e3,
                est.energy_j,
                eff,
                (eff / baseline - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("Expected (paper §1/§5.4 at n = 16384 on GH200): OS II-fast-14 ≈ +43%");
    println!("over DGEMM; OS II-fast-8 ≈ +150% over SGEMM.");
}
