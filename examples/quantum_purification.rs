//! Density-matrix purification on emulated GEMM — the quantum-chemistry
//! use case of the paper's reference [2] (precision requirements can be
//! relaxed for much of the computation).
//!
//! McWeeny iteration `P ← 3P² - 2P³` drives a matrix with spectrum in
//! [0,1] to the idempotent density matrix. All flops are GEMMs; we run the
//! same iteration with native DGEMM and with Ozaki Scheme II at several N
//! and compare convergence and the electron count (trace).
//!
//! Run: `cargo run --release --example quantum_purification`

use gemmul8::apps::purify::{known_spectrum_matrix, mcweeny, trace};
use gemmul8::prelude::*;

fn main() {
    let n = 192;
    println!(
        "== McWeeny purification, n = {n} (true trace = {}) ==\n",
        n / 2
    );
    // Half the spectrum at 0.9 (occupied), half at 0.1 (virtual): the
    // purified matrix has trace n/2.
    let p0 = known_spectrum_matrix(n, 0.1, 0.9, 777);

    let methods: Vec<Box<dyn MatMulF64>> = vec![
        Box::new(NativeDgemm),
        Box::new(Ozaki2::new(8, Mode::Fast)),
        Box::new(Ozaki2::new(12, Mode::Fast)),
        Box::new(Ozaki2::new(15, Mode::Fast)),
        Box::new(Ozaki2::new(15, Mode::Accurate)),
    ];

    println!(
        "{:<16} {:>6} {:>14} {:>16}",
        "GEMM", "iters", "final ||P²-P||", "trace error"
    );
    for method in &methods {
        let r = mcweeny(&p0, method.as_ref(), 1e-9, 40);
        let final_err = r.idempotency_history.last().copied().unwrap_or(f64::NAN);
        println!(
            "{:<16} {:>6} {:>14.3e} {:>16.3e}",
            method.name(),
            r.iterations,
            final_err,
            (trace(&r.p) - (n / 2) as f64).abs()
        );
    }

    println!("\nExpected: every N >= 8 converges to the same density matrix — the");
    println!("iteration is self-correcting, so even reduced-accuracy GEMM suffices");
    println!("(the point of reference [2]); N = 15 matches native convergence exactly.");
}
