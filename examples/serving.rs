//! Three tenants sharing one GEMM server: two weight-stationary
//! inference tenants streaming small below-crossover products against
//! their own pinned weight matrix, and one HPC tenant submitting large
//! above-crossover GEMMs that take the solo striped path.
//!
//! Each tenant runs on its own submitter thread; the server coalesces
//! the small jobs into shared-operand group rounds (the pinned weights
//! pay Algorithm 1's front end once, not per request) and dispatches the
//! large jobs immediately. Every response is verified bit-identical to
//! the sequential `Ozaki2::dgemm` oracle, then the per-tenant accounting
//! and the server-wide coalescing outcome are printed.
//!
//! Run: `cargo run --release --example serving`

use gemmul8::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let nmod = 15usize; // DGEMM-level accuracy, the paper's §5.1 setting
    println!("== many-tenant serving (gemm_serve) ==\n");

    let server = Server::builder(nmod, Mode::Fast)
        .coalesce_window(Duration::from_micros(500))
        .max_batch(32)
        .build();
    let emu = Ozaki2::new(nmod, Mode::Fast);

    // Two inference tenants: pinned 64x64 weights, 48 requests each over
    // a cycled pool of 12 activations (the weight-stationary pattern the
    // operand cache amortizes). One HPC tenant: 4 requests at 256^3.
    struct Inference {
        name: &'static str,
        weights: Arc<MatF64>,
        acts: Vec<Arc<MatF64>>,
    }
    let inference: Vec<Inference> = vec![("svc-a", 10u64), ("svc-b", 600u64)]
        .into_iter()
        .map(|(name, seed)| Inference {
            name,
            weights: Arc::new(phi_matrix_f64(64, 64, PHI_HPL, seed + 1000, 1)),
            acts: (0..12)
                .map(|i| Arc::new(phi_matrix_f64(64, 64, PHI_HPL, seed + i, 0)))
                .collect(),
        })
        .collect();
    let hpc_pairs: Vec<(Arc<MatF64>, Arc<MatF64>)> = (0..2u64)
        .map(|i| {
            (
                Arc::new(phi_matrix_f64(256, 256, PHI_HPL, 900 + i, 0)),
                Arc::new(phi_matrix_f64(256, 256, PHI_HPL, 950 + i, 1)),
            )
        })
        .collect();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tenant in &inference {
            let server = &server;
            s.spawn(move || {
                for r in 0..48usize {
                    let a = tenant.acts[r % tenant.acts.len()].clone();
                    let req = GemmRequest::new(tenant.name, a.clone(), tenant.weights.clone());
                    let c = server.submit(req).expect("admit").wait().expect("serve");
                    assert_eq!(
                        c,
                        emu.dgemm(&a, &tenant.weights),
                        "{} r{r} diverged",
                        tenant.name
                    );
                }
            });
        }
        let server = &server;
        s.spawn(move || {
            for r in 0..4usize {
                let (a, b) = &hpc_pairs[r % hpc_pairs.len()];
                let req =
                    GemmRequest::new("hpc", a.clone(), b.clone()).deadline(Duration::from_secs(30));
                let c = server.submit(req).expect("admit").wait().expect("serve");
                assert_eq!(c, emu.dgemm(a, b), "hpc r{r} diverged");
            }
        });
    });
    let wall = t0.elapsed().as_secs_f64();

    let stats = server.stats();
    println!(
        "served {} requests in {:.1} ms ({:.0} GEMMs/s), every result bit-identical to Ozaki2::dgemm\n",
        stats.completed,
        wall * 1e3,
        stats.completed as f64 / wall
    );
    println!("tenant    submitted  completed  residue-GEMMs  bytes        operand hits");
    for (name, t) in server.tenants() {
        println!(
            "{name:9} {:9} {:10} {:14} {:12} {:12}",
            t.submitted, t.completed, t.residue_gemms, t.bytes, t.cache_hits
        );
    }
    println!(
        "\ncoalescing: {} coalesced + {} solo across {} rounds ({:.1}% coalesce rate, peak queue {})",
        stats.coalesced,
        stats.solo,
        stats.rounds,
        stats.coalesce_rate() * 100.0,
        stats.peak_queue_depth
    );
    println!(
        "operand cache: {} prepared entries, {} hits across rounds",
        server.runtime().cache().len(),
        server.runtime().cache().hits()
    );
    server.shutdown();
}
