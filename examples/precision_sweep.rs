//! The accuracy/throughput trade-off sweep: Ozaki Scheme II as an
//! *intermediate precision* between TF32 and FP32 (paper §5.2/§6: "it can
//! serve as an intermediate-precision approach between FP32 and TF32").
//!
//! Measures real accuracy on this machine and pairs it with the modelled
//! GH200 throughput for each N, reproducing the paper's accuracy-vs-speed
//! frontier.
//!
//! Run: `cargo run --release --example precision_sweep`

use gemm_perfmodel::{gh200, ops, PerfModel};
use gemmul8::prelude::*;

fn main() {
    let (m, n, k) = (256, 256, 1024);
    println!(
        "== SGEMM precision/throughput frontier (accuracy measured, TFLOPS modelled on GH200) ==\n"
    );
    let a = phi_matrix_f32(m, k, 0.5, 99, 0);
    let b = phi_matrix_f32(k, n, 0.5, 99, 1);
    let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
    let err = |c: &MatF32| max_rel_error_vs_dd(&c.map(|x| x as f64), &exact);

    let model = PerfModel::new(gh200());
    let big = 16384;
    let flops = ops::logical_flops(big, big, big);
    let tflops = |sched: Vec<gemm_perfmodel::Op>| model.run(&sched).tflops(flops);

    println!(
        "{:<16} {:>14} {:>18}",
        "method", "max rel error", "modelled TFLOPS"
    );
    println!(
        "{:<16} {:>14.3e} {:>18.1}",
        "SGEMM",
        err(&NativeSgemm.matmul_f32(&a, &b)),
        tflops(ops::native_sgemm(big, big, big))
    );
    for nmod in 2..=10usize {
        let method = Ozaki2::new(nmod, Mode::Fast);
        let e = err(&method.sgemm(&a, &b));
        let t = tflops(ops::ozaki2(
            big,
            big,
            big,
            nmod,
            ops::Os2Mode::Fast,
            ops::Os2Input::F32,
        ));
        println!("{:<16} {:>14.3e} {:>18.1}", MatMulF32::name(&method), e, t);
    }
    println!(
        "{:<16} {:>14.3e} {:>18.1}",
        "TF32GEMM",
        err(&Tf32Gemm.matmul_f32(&a, &b)),
        tflops(ops::tf32gemm(big, big, big))
    );

    println!("\nExpected: N in 4..7 gives TF32-level accuracy at better-than-SGEMM");
    println!("throughput; N in 7..9 gives SGEMM-level accuracy at 2-3x SGEMM speed.");
}
