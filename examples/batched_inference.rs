//! Weight-stationary serving with the batched runtime: one cached weight
//! matrix `B`, a stream of activation batches `A`, and the amortized cost
//! of Algorithm 1's convert front end before vs after operand caching.
//!
//! The naive loop re-runs `B`'s scale + trunc + convert + pack on every
//! single product; [`BatchedOzaki2`] prepares `B` once, keeps it in the
//! prepared-operand LRU across calls, pools the per-item workspaces, and
//! converts each streamed `A` into reused panel buffers — every result
//! bit-identical to `Ozaki2::dgemm`.
//!
//! Run: `cargo run --release --example batched_inference`

use gemmul8::prelude::*;
use std::time::Instant;

fn main() {
    // A service-shaped workload: 64-dim GEMMs, micro-batches of 64 items,
    // many rounds — the regime where per-call front-end cost dominates.
    let (m, n, k) = (64usize, 64, 64);
    let (items, rounds, nmod) = (64usize, 8, 15);
    println!("== batched weight-stationary serving ==");
    println!("   {m}x{k} . {k}x{n}, {items} items/batch, {rounds} rounds, N = {nmod}\n");

    let weights = phi_matrix_f64(k, n, PHI_HPL, 7, 1);
    let streams: Vec<Vec<MatF64>> = (0..rounds)
        .map(|r| {
            (0..items)
                .map(|i| phi_matrix_f64(m, k, PHI_HPL, (r * items + i) as u64, 0))
                .collect()
        })
        .collect();

    // -- naive: one Ozaki2::dgemm per product ---------------------------
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let t0 = Instant::now();
    let mut naive_out = Vec::new();
    for batch in &streams {
        naive_out.push(
            batch
                .iter()
                .map(|a| emu.dgemm(a, &weights))
                .collect::<Vec<_>>(),
        );
    }
    let t_naive = t0.elapsed();

    // The convert front end (scale + trunc + convert) B pays per call:
    // measure one preparation and scale it by the call count.
    let pb = emu.prepare_b(&weights);
    let prep = pb.prepare_seconds();
    let naive_front = prep * (rounds * items) as f64;
    println!(
        "naive per-item loop      : {:8.1} ms",
        ms(t_naive.as_secs_f64())
    );
    println!(
        "  of which B front end   : {:8.1} ms ({:4.1}% — paid {} times)",
        ms(naive_front),
        100.0 * naive_front / t_naive.as_secs_f64(),
        rounds * items
    );

    // -- batched: cached B, pooled workspaces, scheduled items ----------
    let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
    let mut outs: Vec<MatF64> = (0..items).map(|_| Matrix::zeros(m, n)).collect();
    let t0 = Instant::now();
    let mut flat = vec![0f64; items * m * k];
    for (r, batch) in streams.iter().enumerate() {
        for (i, a) in batch.iter().enumerate() {
            flat[i * m * k..(i + 1) * m * k].copy_from_slice(a.as_slice());
        }
        let a_batch = StridedBatchF64::packed(&flat, m, k, items);
        let b_batch = StridedBatchF64::broadcast(&weights, items);
        runtime
            .try_dgemm_batched_into(&a_batch, &b_batch, &mut outs)
            .expect("batched serving");
        // Spot-check bit-identicality against the naive loop.
        assert_eq!(&outs, &naive_out[r], "round {r} must match bitwise");
    }
    let t_batched = t0.elapsed();
    let batched_front = prep; // prepared once, amortized over every call
    println!(
        "batched runtime          : {:8.1} ms  ({:.2}x)",
        ms(t_batched.as_secs_f64()),
        t_naive.as_secs_f64() / t_batched.as_secs_f64()
    );
    println!(
        "  amortized B front end  : {:8.1} ms ({:4.1}% — prepared once, {} cache hits)",
        ms(batched_front),
        100.0 * batched_front / t_batched.as_secs_f64(),
        runtime.cache().hits()
    );
    println!(
        "  workspaces created     : {:8} (pooled, {:.1} KiB steady state)",
        runtime.pool().created(),
        runtime.pool().bytes() as f64 / 1024.0
    );
    println!("\nevery batched result matched Ozaki2::dgemm bit for bit");
}

fn ms(s: f64) -> f64 {
    s * 1e3
}
