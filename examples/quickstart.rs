//! Quickstart: emulate DGEMM and SGEMM with Ozaki Scheme II and compare
//! accuracy against native GEMM and the paper's baselines.
//!
//! Run: `cargo run --release --example quickstart`

use gemmul8::prelude::*;

fn main() {
    let (m, n, k) = (256, 256, 512);
    println!("== GEMMul8-rs quickstart: {m}x{k} times {k}x{n} ==\n");

    // The paper's workload: a_ij = (rand - 0.5) * exp(phi * randn),
    // phi = 0.5 is HPL-like. Fixed seed => fully reproducible.
    let a = phi_matrix_f64(m, k, PHI_HPL, 42, 0);
    let b = phi_matrix_f64(k, n, PHI_HPL, 42, 1);

    // High-accuracy oracle (double-double accumulation).
    let exact = dd_gemm(&a, &b);

    // The canonical entry: build from an accuracy target (the builder
    // resolves N through the a-priori model — DGEMM-level at this k) and
    // run the unified view facade. Operand views make transposes free:
    // C = A · (Bᵀ)ᵀ below reads the transposed buffer with zero copies.
    let emu = Ozaki2::builder()
        .accuracy(Accuracy::Fp64Equivalent)
        .mode(Mode::Fast)
        .build_for_k(k)
        .expect("fp64-level accuracy is reachable");
    let bt = b.transpose(); // pretend the caller stores B transposed
    let out = emu
        .gemm(GemmArgs::new(&a, &bt).trans_b(GemmOp::T))
        .expect("finite inputs");
    println!(
        "builder resolved N = {} for k = {k}; transposed-view DGEMM error {:.3e} \
         ({} INT8 GEMMs)\n",
        emu.n_moduli(),
        max_rel_error_vs_dd(&out.c, &exact),
        out.report.int8_gemm_calls
    );

    println!("-- DGEMM emulation: error vs number of moduli N --");
    println!("{:<16} {:>14}", "method", "max rel error");
    let native = NativeDgemm.matmul_f64(&a, &b);
    println!(
        "{:<16} {:>14.3e}",
        "DGEMM",
        max_rel_error_vs_dd(&native, &exact)
    );
    for nmod in [6usize, 10, 14, 15, 17] {
        for mode in [Mode::Fast, Mode::Accurate] {
            let method = Ozaki2::new(nmod, mode);
            let c = method.dgemm(&a, &b);
            println!(
                "{:<16} {:>14.3e}",
                MatMulF64::name(&method),
                max_rel_error_vs_dd(&c, &exact)
            );
        }
    }

    println!("\n-- SGEMM emulation --");
    let a32 = phi_matrix_f32(m, k, 0.5, 7, 0);
    let b32 = phi_matrix_f32(k, n, 0.5, 7, 1);
    let exact32 = dd_gemm(&a32.map(|x| x as f64), &b32.map(|x| x as f64));
    let err32 = |c: &MatF32| max_rel_error_vs_dd(&c.map(|x| x as f64), &exact32);

    println!("{:<16} {:>14}", "method", "max rel error");
    println!(
        "{:<16} {:>14.3e}",
        "SGEMM",
        err32(&NativeSgemm.matmul_f32(&a32, &b32))
    );
    println!(
        "{:<16} {:>14.3e}",
        "TF32GEMM",
        err32(&Tf32Gemm.matmul_f32(&a32, &b32))
    );
    println!(
        "{:<16} {:>14.3e}",
        "BF16x9",
        err32(&Bf16x9.matmul_f32(&a32, &b32))
    );
    println!(
        "{:<16} {:>14.3e}",
        "cuMpSGEMM",
        err32(&CuMpSgemm.matmul_f32(&a32, &b32))
    );
    for nmod in [4usize, 6, 8] {
        let method = Ozaki2::new(nmod, Mode::Fast);
        println!(
            "{:<16} {:>14.3e}",
            MatMulF32::name(&method),
            err32(&method.sgemm(&a32, &b32))
        );
    }

    println!("\nExpected: OS II error shrinks ~4 bits per extra modulus (each modulus");
    println!("adds ~8 bits to P, split across the two operands); N=15 matches DGEMM,");
    println!("N=8 matches SGEMM, small N lands between TF32 and SGEMM (Fig. 3).");
}
