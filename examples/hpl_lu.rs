//! HPL-style linear solve with the trailing-matrix GEMMs emulated on the
//! INT8 engine — the workload behind the paper's remark that "HPL can
//! employ emulation with 14 or 15 moduli" (§5.1).
//!
//! Factorises an HPL-like system with blocked, partially-pivoted LU where
//! the Schur-complement updates go through each candidate GEMM, then
//! reports the HPL scaled residual (accepted when < 16).
//!
//! Run: `cargo run --release --example hpl_lu`

use gemmul8::apps::lu::{hpl_residual, lu_factor, lu_solve};
use gemmul8::prelude::*;

fn main() {
    let n = 384;
    let block = 64;
    println!("== HPL-style solve, n = {n}, block = {block} ==\n");
    let (a, b) = gemm_dense::workload::hpl_like_system(n, 20250811);

    let methods: Vec<Box<dyn MatMulF64>> = vec![
        Box::new(NativeDgemm),
        Box::new(Ozaki2::new(12, Mode::Fast)),
        Box::new(Ozaki2::new(14, Mode::Fast)),
        Box::new(Ozaki2::new(15, Mode::Fast)),
        Box::new(Ozaki2::new(15, Mode::Accurate)),
        Box::new(OzImmu::new(8)),
    ];

    println!(
        "{:<16} {:>18} {:>12}",
        "update GEMM", "HPL residual", "verdict"
    );
    for method in &methods {
        let f = lu_factor(&a, block, method.as_ref());
        let x = lu_solve(&f, &b);
        let res = hpl_residual(&a, &x, &b);
        println!(
            "{:<16} {:>18.3} {:>12}",
            method.name(),
            res,
            if res < 16.0 { "PASS" } else { "FAIL" }
        );
    }

    println!("\nExpected: N >= 14 passes the HPL criterion like native DGEMM;");
    println!("N = 12 already loses digits, reflecting Fig. 3's accuracy cliff.");
}
