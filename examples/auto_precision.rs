//! Production workflow: pick the moduli count from an accuracy target,
//! check the shape is in the emulation's sweet spot, and reuse a plan
//! across repeated products.
//!
//! Run: `cargo run --release --example auto_precision`

use gemm_perfmodel::{gh200, recommend_dgemm, Recommendation};
use gemmul8::prelude::*;
use ozaki2::{n_for_dgemm_level, predicted_error, GemmPlan};

fn main() {
    println!("== Automatic precision + deployment workflow ==\n");

    // 1. Accuracy target -> moduli count (per inner dimension).
    println!("-- N needed for DGEMM-level accuracy vs inner dimension k --");
    println!("{:<10} {:>4} {:>16}", "k", "N", "predicted error");
    for k in [256usize, 1024, 4096, 16384, 65536] {
        let n = n_for_dgemm_level(k);
        println!("{:<10} {:>4} {:>16.2e}", k, n, predicted_error(n, k));
    }

    // 2. Shape advisor: is emulation worth it on the target device?
    println!("\n-- Deployment advisor (GH200 model, N from accuracy target) --");
    println!("{:<26} {:>12}", "shape (m x k x n)", "verdict");
    for (m, k, n) in [
        (1024usize, 1024usize, 1024usize),
        (4096, 4096, 4096),
        (16384, 16384, 16384),
        (65536, 64, 65536), // tall-and-skinny: excluded by the paper
    ] {
        let nmod = n_for_dgemm_level(k).min(ozaki2::N_MAX);
        let verdict = match recommend_dgemm(gh200(), m, n, k, nmod) {
            Recommendation::Native => "native DGEMM".to_string(),
            Recommendation::Emulate { n_moduli, speedup } => {
                format!("emulate N={n_moduli} ({speedup:.2}x)")
            }
        };
        println!("{:<26} {:>12}", format!("{m} x {k} x {n}"), verdict);
    }

    // 3. Plan reuse: iterative consumers allocate scratch once.
    println!("\n-- Plan reuse across an iteration (m = n = k = 256) --");
    let (m, n, k) = (256usize, 256, 256);
    let nmod = n_for_dgemm_level(k);
    let emu = Ozaki2::new(nmod, Mode::Fast);
    let mut plan = GemmPlan::new(emu, m, n, k);
    println!(
        "workspace: {:.1} MiB held across calls",
        plan.workspace_bytes() as f64 / (1024.0 * 1024.0)
    );
    let mut a = phi_matrix_f64(m, k, 0.5, 1, 0);
    let b = phi_matrix_f64(k, n, 0.5, 1, 1);
    for iter in 0..3 {
        let c = plan.execute(&a, &b);
        // Feed the result back in (power-iteration style).
        let scale = 1.0 / gemm_dense::norms::max_abs_f64(&c).max(1e-300);
        a = c.map(|x| x * scale);
        println!("iter {iter}: ||C||_max scaled by {scale:.3e}");
    }
    println!("\nDone — same results as one-shot Ozaki2::dgemm, zero steady-state allocation.");
}
